package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MutexDiscipline machine-checks the tree's "guarded by" field contracts.
// A struct field annotated
//
//	sales []Purchase // guarded by mu
//
// may only be read where the must-lockset (cfg.go + dataflow.go) proves
// the matching lock — the annotation's sibling field, resolved against
// the access path, so c.sales demands c.mu — is held on *every* path, and
// only written where it is held exclusively (an RLock admits reads but
// not writes). Helper functions that rely on their caller's critical
// section declare it with //lint:holds mu; the obligation then moves to
// their call sites, which this rule checks the same way.
//
// This is what turns broker.go's comment-only conventions into an
// invariant a refactor cannot silently drop: the MBP broker is a
// money-handling serving loop, and an unlocked ledger access corrupts
// revenue totals rather than crashing (Section 1's real-time marketplace
// loop; ROADMAP's sharded serving stack makes every future PR a chance
// to reintroduce one).
type MutexDiscipline struct{}

func (MutexDiscipline) Name() string { return "mutex-discipline" }

func (MutexDiscipline) Doc() string {
	return "fields annotated `// guarded by <mu>` must be accessed only while " +
		"<mu> is held on every CFG path (exclusively, for writes); " +
		"//lint:holds moves the obligation to call sites"
}

func (r MutexDiscipline) Inspect(p *Pass) {
	guards := collectGuards(p, p.Reportf)
	holds := collectHolds(p, p.Reportf)
	if len(guards) == 0 && len(holds) == 0 {
		return
	}
	for _, fb := range funcBodies(p) {
		cfg := lockCFG(p, fb.body)
		res := Forward(cfg, &lockFlow{info: p.Info, entry: entryFact(fb)})
		res.Walk(func(_ *Block, n ast.Node, before lockFact) {
			r.checkNode(p, n, before, guards, holds)
		})
	}
}

// checkNode inspects one CFG node with the lockset in force before it.
func (r MutexDiscipline) checkNode(p *Pass, n ast.Node, fact lockFact, guards map[types.Object]string, holds map[types.Object][]string) {
	writes := writeTargets(n)
	_, inDefer := n.(*ast.DeferStmt)
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // its body runs at another time; analyzed separately
		case *ast.SelectorExpr:
			obj := p.Info.Uses[x.Sel]
			guard, guarded := guards[obj]
			if !guarded {
				return true
			}
			base, ok := exprKey(x.X)
			if !ok {
				return true
			}
			lock := base + "." + guard
			access, need := "read", lockR
			if writes[x] {
				access, need = "written", lockW
			}
			h, held := fact.held[lock]
			switch {
			case !held:
				p.Reportf(x.Pos(), "%s.%s is guarded by %q but is %s without %s held on every path",
					base, x.Sel.Name, guard, access, lock)
			case h.mode < need:
				p.Reportf(x.Pos(), "%s.%s is guarded by %q but is written while %s is only read-locked; writes need Lock, not RLock",
					base, x.Sel.Name, guard, lock)
			}
		case *ast.CallExpr:
			if inDefer {
				// The deferred call runs at function exit, under an
				// unknowable lockset; only its argument evaluation (which
				// the SelectorExpr case above sees) happens here.
				return true
			}
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			names := holds[p.Info.Uses[sel.Sel]]
			if len(names) == 0 {
				return true
			}
			base, ok := exprKey(sel.X)
			if !ok {
				return true
			}
			for _, lock := range resolveHoldKeys(names, base) {
				if _, held := fact.held[lock]; !held {
					p.Reportf(x.Pos(), "call to %s requires %s held (//lint:holds) but it is not held on every path",
						sel.Sel.Name, lock)
				}
			}
		}
		return true
	})
}

// resolveHoldKeys renders a callee's receiver-relative holds names
// against the call's receiver path.
func resolveHoldKeys(names []string, base string) []string {
	keys := make([]string, len(names))
	for i, name := range names {
		if strings.Contains(name, ".") {
			keys[i] = name
		} else {
			keys[i] = base + "." + name
		}
	}
	return keys
}

// writeTargets collects the selector expressions a node mutates: roots of
// assignment left-hand sides (through indexing and derefs), inc/dec
// operands, and address-taken operands (conservatively a write — the
// pointer escapes the critical section otherwise).
func writeTargets(n ast.Node) map[ast.Expr]bool {
	w := make(map[ast.Expr]bool)
	mark := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				w[x] = true
				return
			default:
				return
			}
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				mark(x.X)
			}
		}
		return true
	})
	return w
}
