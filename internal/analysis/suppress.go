package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full grammar is
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// and the directive silences the named rules on its own line and on the
// line immediately below it, so both the trailing-comment form and the
// line-above form work:
//
//	t := time.Now() //lint:ignore no-wallclock boot stamp is display-only
//
//	//lint:ignore no-wallclock boot stamp is display-only
//	t := time.Now()
const ignorePrefix = "//lint:ignore"

// ignoreKey identifies a (file, line) a directive covers.
type ignoreKey struct {
	file string
	line int
}

// ignoreSet is the parsed suppression state of one package.
type ignoreSet struct {
	// rules maps each covered (file, line) to the rule names silenced there.
	rules map[ignoreKey][]string
	// malformed collects directives missing a rule or a reason; they are
	// reported as findings so an unexplained suppression cannot land.
	malformed []Diagnostic
}

// collectIgnores scans every comment in the files for //lint:ignore
// directives. Only line comments are honoured; a directive inside a block
// comment is inert.
func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	s := &ignoreSet{rules: make(map[ignoreKey][]string)}
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorefoo — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Rule:    "lint-ignore",
						File:    pos.Filename,
						Line:    pos.Line,
						Col:     pos.Column,
						Message: "malformed directive: want //lint:ignore <rule>[,<rule>...] <reason>",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := ignoreKey{file: pos.Filename, line: line}
					s.rules[key] = append(s.rules[key], names...)
				}
			}
		}
	}
	return s
}

// suppresses reports whether d is covered by a directive.
func (s *ignoreSet) suppresses(d Diagnostic) bool {
	for _, name := range s.rules[ignoreKey{file: d.File, line: d.Line}] {
		if name == d.Rule {
			return true
		}
	}
	return false
}
