package analysis

// snapshot-immutability enforces the clone-and-swap (RCU) discipline the
// broker's lock-free menu depends on: a value published through an
// atomic.Pointer is shared with concurrent readers the instant Store
// returns, so the only safe mutation window is between cloning the
// current snapshot and storing the clone. Any write that reaches memory
// obtained from a Load — directly, through a chain of selectors and
// indexes, or by passing the loaded value to a callee whose summary says
// it mutates that parameter — races every reader and is a finding.
//
// Two sources make a value "published":
//
//   - the result of a Load() on any sync/atomic Pointer[T] — provenance
//     then flows through selectors, indexes, derefs, range clauses,
//     reference-typed assignments, and function returns (via bottom-up
//     summaries, so a helper that returns snap.Load() taints its callers);
//   - any expression of a type annotated //lint:immutable <why>, unless
//     the analysis can prove it fresh (a composite literal, new(T), a
//     value copy, or the result of a function whose every return is
//     fresh) or it is a bare parameter (so clone methods and the
//     interprocedural call-site check still work).
//
// Mutation summaries are computed bottom-up over the group call graph:
// writing through a parameter sets that parameter's bit (the receiver is
// parameter 0), and passing a parameter to a mutating callee propagates
// the bit, so `bump(snap.Load())` is reported at the call site even when
// the write is three frames down. Unknown provenance is never reported —
// the rule is quiet by construction on code that does not touch published
// pointers or annotated types.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotImmutability is the group rule. Its per-package Inspect only
// validates //lint:immutable directives; the real work needs the call
// graph.
type SnapshotImmutability struct{}

func (SnapshotImmutability) Name() string { return "snapshot-immutability" }

func (SnapshotImmutability) Doc() string {
	return "values published via atomic.Pointer (or typed //lint:immutable) may " +
		"only be mutated between clone and Store; any write reached from a " +
		"loaded published pointer races concurrent readers"
}

const immutablePrefix = "//lint:immutable"

// Inspect is a no-op: the rule needs the group call graph.
func (SnapshotImmutability) Inspect(*Pass) {}

// snapProv is the provenance lattice: where a pointer-like value came
// from. Only provPublished produces findings; everything uncertain
// collapses to provUnknown and stays silent.
type snapProv uint8

const (
	provUnknown   snapProv = iota
	provFresh              // locally built, not yet published
	provParam              // a parameter's value (index in provVal.param)
	provPublished          // derived from a Load of a published pointer
	provConflict           // incompatible bindings merged; silent
)

type provVal struct {
	kind  snapProv
	param int
}

// mergeProv joins two flow-insensitive bindings of one variable.
func mergeProv(a, b provVal) provVal {
	if a.kind == provUnknown {
		return b
	}
	if b.kind == provUnknown || a == b {
		return a
	}
	return provVal{kind: provConflict}
}

// snapSummary is one function's bottom-up summary. Bits index the
// receiver-then-parameters vector for mutates, and the result tuple for
// published/fresh. published is may (any return site), fresh is must
// (every return site).
type snapSummary struct {
	mutates   uint64
	published uint64
	fresh     uint64
}

func (r SnapshotImmutability) InspectGroup(gp *GroupPass) {
	immutable := collectImmutableTypes(gp)
	an := &snapAnalysis{gp: gp, immutable: immutable}
	summaries := ComputeSummaries(gp.Graph,
		func(n *FuncNode, get func(*FuncNode) snapSummary) snapSummary {
			sum, _ := an.analyze(n, get, false)
			return sum
		},
		func(a, b snapSummary) bool { return a == b })
	get := func(n *FuncNode) snapSummary { return summaries[n] }
	for _, n := range gp.Graph.Nodes {
		an.analyze(n, get, true)
	}
}

// collectImmutableTypes gathers //lint:immutable-annotated named types
// across the group and reports directives without a justification.
func collectImmutableTypes(gp *GroupPass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, pkg := range gp.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					reason, found := "", false
					for _, grp := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
						if grp == nil {
							continue
						}
						for _, c := range grp.List {
							if rest, ok := directiveRest(c.Text, immutablePrefix); ok {
								reason, found = rest, true
							}
						}
					}
					if !found {
						continue
					}
					if reason == "" {
						gp.Reportf(ts.Pos(), "%s needs a reason: %s <why is this type frozen after construction>", immutablePrefix, immutablePrefix)
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						out[tn] = true
					}
				}
			}
		}
	}
	return out
}

// snapAnalysis holds the group-wide state shared by every per-function
// analysis.
type snapAnalysis struct {
	gp        *GroupPass
	immutable map[*types.TypeName]bool
}

// funcProv is the per-function provenance environment.
type funcProv struct {
	an     *snapAnalysis
	node   *FuncNode
	info   *types.Info
	params map[types.Object]int
	env    map[types.Object]provVal
	get    func(*FuncNode) snapSummary
}

// analyze computes a function's summary and, when report is set, emits
// findings against the final summaries.
func (an *snapAnalysis) analyze(n *FuncNode, get func(*FuncNode) snapSummary, report bool) (snapSummary, bool) {
	body := n.Body()
	if body == nil {
		return snapSummary{}, false
	}
	fp := &funcProv{
		an:     an,
		node:   n,
		info:   n.Pkg.Info,
		params: paramIndexes(n),
		env:    make(map[types.Object]provVal),
		get:    get,
	}
	fp.solveEnv(body)
	var sum snapSummary
	fp.scanWrites(body, &sum, report)
	fp.returnBits(n, body, &sum)
	return sum, true
}

// paramIndexes maps the receiver (index 0 on methods) and each named
// parameter object to its position in the summary bit vector.
func paramIndexes(n *FuncNode) map[types.Object]int {
	out := make(map[types.Object]int)
	idx := 0
	addField := func(f *ast.Field) {
		if len(f.Names) == 0 {
			idx++
			return
		}
		for _, name := range f.Names {
			if obj := n.Pkg.Info.Defs[name]; obj != nil {
				out[obj] = idx
			}
			idx++
		}
	}
	var ft *ast.FuncType
	if n.Decl != nil {
		if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 {
			addField(n.Decl.Recv.List[0])
		}
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			addField(f)
		}
	}
	return out
}

// solveEnv computes the flow-insensitive provenance of every local
// variable by iterating the body's bindings to a fixpoint. The lattice
// has height two (unknown → concrete → conflict), so this terminates.
func (fp *funcProv) solveEnv(body *ast.BlockStmt) {
	type binding struct {
		obj types.Object
		prv func() provVal
	}
	var bindings []binding
	bind := func(lhs ast.Expr, prv func() provVal) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := fp.info.Defs[id]
		if obj == nil {
			obj = fp.info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, isParam := fp.params[obj]; isParam {
			return // parameters keep their identity
		}
		bindings = append(bindings, binding{obj, prv})
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.FuncLit:
			return false // a literal's bindings belong to its own node
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					rhs := s.Rhs[i]
					bind(s.Lhs[i], func() provVal { return fp.valueProv(rhs) })
				}
			} else if len(s.Rhs) == 1 {
				// Multi-value call: per-result summary bits.
				call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				for i := range s.Lhs {
					i := i
					bind(s.Lhs[i], func() provVal { return fp.callResultProv(call, i) })
				}
			}
		case *ast.RangeStmt:
			x := s.X
			if s.Key != nil {
				bind(s.Key, func() provVal { return provVal{kind: provFresh} })
			}
			if s.Value != nil {
				val := s.Value
				bind(val, func() provVal {
					if t := fp.info.TypeOf(val); t != nil && refLike(t) {
						return derived(fp.prov(x))
					}
					return provVal{kind: provFresh}
				})
			}
		}
		return true
	})
	for pass := 0; pass < len(bindings)+2; pass++ {
		changed := false
		for _, b := range bindings {
			next := mergeProv(fp.env[b.obj], b.prv())
			if next != fp.env[b.obj] {
				fp.env[b.obj] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// refLike reports whether assigning a value of type t shares the
// underlying memory (so provenance follows the copy).
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
		return true
	}
	return false
}

// valueProv is expression provenance under assignment semantics: copying
// a non-reference value produces fresh memory, so published-ness does not
// follow it.
func (fp *funcProv) valueProv(e ast.Expr) provVal {
	if t := fp.info.TypeOf(e); t != nil && !refLike(t) {
		return provVal{kind: provFresh}
	}
	return fp.prov(e)
}

// derived keeps provenance across a selector/index/deref step: memory
// reached from a published value is published.
func derived(p provVal) provVal {
	switch p.kind {
	case provPublished, provFresh, provParam:
		return p
	}
	return provVal{kind: provUnknown}
}

// prov resolves the provenance of an lvalue-ish expression.
func (fp *funcProv) prov(e ast.Expr) provVal {
	p := fp.rawProv(e)
	if p.kind == provUnknown && fp.isImmutableTyped(fp.info.TypeOf(e)) {
		// A value of an immutable-annotated type is shared unless the
		// analysis proved it fresh or it is a bare parameter.
		return provVal{kind: provPublished}
	}
	return p
}

func (fp *funcProv) rawProv(e ast.Expr) provVal {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := fp.info.Uses[e]
		if obj == nil {
			obj = fp.info.Defs[e]
		}
		if obj == nil {
			return provVal{kind: provFresh} // nil, true, iota, ...
		}
		if idx, ok := fp.params[obj]; ok {
			return provVal{kind: provParam, param: idx}
		}
		switch obj.(type) {
		case *types.Const, *types.Nil:
			return provVal{kind: provFresh}
		}
		if p, ok := fp.env[obj]; ok {
			return p
		}
		return provVal{kind: provUnknown}
	case *ast.SelectorExpr:
		// A field read of an immutable-annotated type from a non-fresh
		// base is shared state even when the base is a parameter: h.f on
		// a *holder parameter hands out the frozen value itself.
		base := fp.prov(e.X)
		d := derived(base)
		if d.kind != provFresh && d.kind != provPublished {
			if fp.isImmutableTyped(fp.info.TypeOf(e)) {
				return provVal{kind: provPublished}
			}
		}
		return d
	case *ast.IndexExpr:
		if tv, ok := fp.info.Types[e]; ok && tv.IsType() {
			return provVal{kind: provUnknown} // generic instantiation
		}
		return derived(fp.prov(e.X))
	case *ast.StarExpr:
		return derived(fp.prov(e.X))
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fp.prov(e.X)
		}
		return provVal{kind: provFresh}
	case *ast.TypeAssertExpr:
		return derived(fp.prov(e.X))
	case *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		return provVal{kind: provFresh}
	case *ast.CallExpr:
		return fp.callResultProv(e, 0)
	}
	return provVal{kind: provUnknown}
}

// callResultProv is the provenance of result i of a call.
func (fp *funcProv) callResultProv(call *ast.CallExpr, i int) provVal {
	if isAtomicLoad(fp.info, call) {
		return provVal{kind: provPublished}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fp.info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "new" || b.Name() == "make" {
				return provVal{kind: provFresh}
			}
			return provVal{kind: provUnknown}
		}
	}
	callee := fp.staticCallee(call)
	if callee == nil || i > 63 {
		return provVal{kind: provUnknown}
	}
	sum := fp.get(callee)
	switch {
	case sum.published&(1<<i) != 0:
		return provVal{kind: provPublished}
	case sum.fresh&(1<<i) != 0:
		return provVal{kind: provFresh}
	}
	return provVal{kind: provUnknown}
}

// staticCallee resolves a call to a single in-group node, or nil for
// dynamic, builtin and out-of-group calls.
func (fp *funcProv) staticCallee(call *ast.CallExpr) *FuncNode {
	return fp.an.gp.Graph.StaticCallee(fp.info, call)
}

// isAtomicLoad recognizes a Load() on any sync/atomic Pointer[T]: a
// method from package sync/atomic named Load whose result is a pointer to
// a named type. (Int64.Load returns a scalar and Value.Load returns any,
// so neither matches.)
func isAtomicLoad(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Name() != "Load" {
		return false
	}
	ptr, ok := info.TypeOf(call).(*types.Pointer)
	if !ok {
		return false
	}
	_, named := ptr.Elem().(*types.Named)
	return named
}

func (fp *funcProv) isImmutableTyped(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return fp.an.immutable[named.Obj()]
}

// scanWrites finds every mutation in the body: direct writes through
// published values are findings; writes through parameters set summary
// bits; call sites passing published values to mutating callees are
// findings too.
func (fp *funcProv) scanWrites(body *ast.BlockStmt, sum *snapSummary, report bool) {
	gp := fp.an.gp
	flag := func(pos token.Pos, base ast.Expr, what string) {
		p := fp.prov(base)
		switch p.kind {
		case provPublished:
			if report {
				gp.Reportf(pos, "%s %s, which reaches a published snapshot (atomic.Pointer load or //lint:immutable type); clone the snapshot, mutate the clone, then Store it",
					what, types.ExprString(base))
			}
		case provParam:
			if p.param <= 63 {
				sum.mutates |= 1 << p.param
			}
		}
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					flag(lhs.Pos(), l.X, "this write mutates")
				case *ast.IndexExpr:
					flag(lhs.Pos(), l.X, "this write mutates")
				case *ast.StarExpr:
					flag(lhs.Pos(), l.X, "this write mutates")
				}
			}
		case *ast.IncDecStmt:
			switch l := ast.Unparen(s.X).(type) {
			case *ast.SelectorExpr:
				flag(s.Pos(), l.X, "this write mutates")
			case *ast.IndexExpr:
				flag(s.Pos(), l.X, "this write mutates")
			case *ast.StarExpr:
				flag(s.Pos(), l.X, "this write mutates")
			}
		case *ast.CallExpr:
			fp.scanCall(s, sum, report, flag)
		}
		return true
	})
}

// scanCall checks one call site: builtins that write their argument, and
// static callees whose summaries mutate a parameter the caller passes a
// published value for.
func (fp *funcProv) scanCall(call *ast.CallExpr, sum *snapSummary, report bool, flag func(token.Pos, ast.Expr, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fp.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "delete", "copy", "append":
				if len(call.Args) > 0 {
					flag(call.Pos(), call.Args[0], "this "+b.Name()+" writes")
				}
			}
			return
		}
	}
	callee := fp.staticCallee(call)
	if callee == nil {
		return
	}
	calleeSum := fp.get(callee)
	if calleeSum.mutates == 0 {
		return
	}
	args := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && callee.Decl != nil && callee.Decl.Recv != nil {
		args = append(args, sel.X)
	}
	args = append(args, call.Args...)
	gp := fp.an.gp
	for i, arg := range args {
		if i > 63 || calleeSum.mutates&(1<<i) == 0 {
			continue
		}
		if t := fp.info.TypeOf(arg); t != nil && !refLike(t) {
			continue // passed by value: the callee mutates a copy
		}
		p := fp.prov(arg)
		switch p.kind {
		case provPublished:
			if report {
				gp.Reportf(call.Pos(), "this call passes %s, which reaches a published snapshot, to %s, which mutates it; clone before Store",
					types.ExprString(arg), shortFuncName(callee.Name))
			}
		case provParam:
			if p.param <= 63 {
				sum.mutates |= 1 << p.param
			}
		}
	}
}

// returnBits fills the summary's result-provenance bits from every return
// site: published is a may-property, fresh a must-property.
func (fp *funcProv) returnBits(n *FuncNode, body *ast.BlockStmt, sum *snapSummary) {
	nresults := 0
	if sig, ok := fp.info.TypeOf(funcTypeExpr(n)).(*types.Signature); ok {
		nresults = sig.Results().Len()
	}
	if nresults == 0 || nresults > 64 {
		return
	}
	freshAll := uint64(1<<nresults) - 1
	sawReturn := false
	ast.Inspect(body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		sawReturn = true
		if len(ret.Results) == 1 && nresults > 1 {
			// return f(): forward the callee's bits.
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				if callee := fp.staticCallee(call); callee != nil {
					cs := fp.get(callee)
					sum.published |= cs.published
					freshAll &= cs.fresh
					return true
				}
			}
			freshAll = 0
			return true
		}
		for i, res := range ret.Results {
			if i >= nresults {
				break
			}
			switch fp.prov(res).kind {
			case provPublished:
				sum.published |= 1 << i
				freshAll &^= 1 << i
			case provFresh:
				// stays fresh
			default:
				freshAll &^= 1 << i
			}
		}
		return true
	})
	if sawReturn {
		sum.fresh |= freshAll
	}
}

// funcTypeExpr returns the node's type expression for signature lookup.
func funcTypeExpr(n *FuncNode) ast.Expr {
	if n.Decl != nil {
		return n.Decl.Name
	}
	return n.Lit
}
