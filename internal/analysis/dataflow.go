package analysis

// A small forward dataflow engine over the CFGs built in cfg.go. Facts
// are per-rule value types (the concurrency rules use locksets, see
// lockflow.go); the engine just runs the standard worklist iteration to
// a fixpoint and then lets a rule replay transfer functions inside each
// block to observe the fact immediately before every node.
//
// Termination is the Flow implementation's contract: Join must be
// monotone (repeated joins converge — intersections shrink, unions grow
// within the finite key universe of one function) and Equal must detect
// convergence.

import "go/ast"

// Flow defines one forward dataflow problem.
type Flow[F any] interface {
	// Entry is the fact on function entry.
	Entry() F
	// Transfer pushes a fact across one CFG node.
	Transfer(fact F, n ast.Node) F
	// Join merges facts where control-flow paths meet.
	Join(a, b F) F
	// Equal reports fact equality, ending the fixpoint iteration.
	Equal(a, b F) bool
}

// FlowResult holds the fixpoint: the fact at entry to each reached block.
type FlowResult[F any] struct {
	g  *CFG
	fl Flow[F]
	in map[*Block]F
}

// Forward runs the worklist algorithm on g and returns the solution.
// Blocks unreachable from Entry are never visited and report reached ==
// false, so rules stay silent on dead code rather than guessing.
func Forward[F any](g *CFG, fl Flow[F]) *FlowResult[F] {
	r := &FlowResult[F]{g: g, fl: fl, in: make(map[*Block]F)}
	r.in[g.Entry] = fl.Entry()
	queued := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := r.in[b]
		for _, n := range b.Nodes {
			out = fl.Transfer(out, n)
		}
		for _, s := range b.Succs {
			next := out
			old, reached := r.in[s]
			if reached {
				next = fl.Join(old, out)
				if fl.Equal(old, next) {
					continue
				}
			}
			r.in[s] = next
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return r
}

// Before returns the fact on entry to b; reached is false when b is
// unreachable (the fact is then the zero F and must not be used).
func (r *FlowResult[F]) Before(b *Block) (fact F, reached bool) {
	fact, reached = r.in[b]
	return fact, reached
}

// After replays b's transfers and returns the fact leaving the block;
// reached as in Before.
func (r *FlowResult[F]) After(b *Block) (fact F, reached bool) {
	fact, reached = r.in[b]
	if !reached {
		return fact, false
	}
	for _, n := range b.Nodes {
		fact = r.fl.Transfer(fact, n)
	}
	return fact, true
}

// Walk visits every node of every reached block in construction order,
// handing visit the fact in force immediately before the node.
func (r *FlowResult[F]) Walk(visit func(b *Block, n ast.Node, before F)) {
	for _, b := range r.g.Blocks {
		fact, reached := r.in[b]
		if !reached {
			continue
		}
		for _, n := range b.Nodes {
			visit(b, n, fact)
			fact = r.fl.Transfer(fact, n)
		}
	}
}
