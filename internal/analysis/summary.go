package analysis

// ComputeSummaries drives a bottom-up summary computation over the call
// graph. compute is called with a node and a getter for the current
// summaries of other nodes (the zero value of S before a node's first
// computation). Components are processed callee-first; within a strongly
// connected component — mutual recursion — compute is re-run until no
// summary in the component changes, so compute must be monotone for the
// fixpoint to terminate: a recomputed summary may add facts but should
// never oscillate.
func ComputeSummaries[S any](g *CallGraph, compute func(n *FuncNode, get func(*FuncNode) S) S, equal func(a, b S) bool) map[*FuncNode]S {
	out := make(map[*FuncNode]S, len(g.Nodes))
	get := func(n *FuncNode) S { return out[n] }
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				next := compute(n, get)
				if !equal(out[n], next) {
					out[n] = next
					changed = true
				}
			}
		}
	}
	return out
}
