package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock reports references to time.Now in the scoped deterministic
// packages. Experiment harness code (Figures 6–14) and the pricing/solver
// packages must be byte-for-byte replayable; timings there flow through an
// injected clock (see internal/experiments.Clock) so a replay can
// substitute a fake. The single place a package binds its default clock to
// the real time.Now carries a //lint:ignore with its justification, which
// keeps every wall-clock dependency greppable.
type WallClock struct {
	// Scope lists the package paths (subtrees included) the rule applies
	// to; empty means every package.
	Scope []string
}

func (WallClock) Name() string { return "no-wallclock" }

func (WallClock) Doc() string {
	return "deterministic experiment/pricing packages must not read time.Now " +
		"directly; thread an injected clock so replays are reproducible"
}

func (r WallClock) Inspect(p *Pass) {
	if len(r.Scope) > 0 && !matchScope(r.Scope, p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Now" {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[ident].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			p.Reportf(sel.Pos(), "time.Now in deterministic package %s; use the injected clock so replays are reproducible", p.Path)
			return true
		})
	}
}
