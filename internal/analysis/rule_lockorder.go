package analysis

import "go/ast"

// LockOrder enforces a declared partial acquisition order between locks.
// A package declares its order once, next to the locks it covers:
//
//	//lint:lockorder jmu < mu
//
// and any path that acquires a lock while already holding one the
// declaration says must come *after* it is flagged — the classic ABBA
// deadlock shape, caught before two goroutines ever interleave. The
// lockset here uses may-join (union): holding mu on even one incoming
// path makes a subsequent jmu acquisition a deadlock risk, so "held on
// some path" is the sound direction for ordering, unlike the must-join
// the discipline rule uses.
//
// Locks are matched by field name (the last path component), so the
// order declared for Broker.jmu/Broker.mu applies to b.jmu/b.mu in every
// method. This directly machine-checks broker.go's write-ahead contract:
// jmu serializes journal-append + ledger-append and is taken before mu,
// never while mu is held.
type LockOrder struct{}

func (LockOrder) Name() string { return "lock-order" }

func (LockOrder) Doc() string {
	return "locks must be acquired in the order declared by //lint:lockorder " +
		"directives (e.g. jmu < mu); acquiring against the order on any path " +
		"is an ABBA deadlock risk"
}

func (r LockOrder) Inspect(p *Pass) {
	lo := collectLockOrder(p, p.Reportf)
	if len(lo.before) == 0 {
		return
	}
	for _, fb := range funcBodies(p) {
		cfg := lockCFG(p, fb.body)
		res := Forward(cfg, &lockFlow{info: p.Info, entry: entryFact(fb), union: true})
		res.Walk(func(_ *Block, n ast.Node, before lockFact) {
			cur := before
			for _, op := range lockOpsIn(p.Info, n) {
				if op.acquire() {
					acq := lastComponent(op.key)
					for heldKey := range cur.held {
						if heldKey == op.key {
							continue
						}
						held := lastComponent(heldKey)
						if lo.before[acq][held] {
							p.Reportf(op.pos, "acquiring %s while %s may be held violates the declared lock order %s < %s",
								op.key, heldKey, acq, held)
						}
					}
				}
				cur = applyLockOp(cur, op)
			}
		})
	}
}
