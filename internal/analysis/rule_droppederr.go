package analysis

import (
	"go/ast"
	"go/types"
)

// DroppedError reports error results that are silently discarded: a bare
// call statement (including defer and go) whose callee returns an error,
// and assignments of an error result to the blank identifier. In a broker
// that moves money, a swallowed error is a mispriced sale or a corrupted
// curve; the tree's policy is to handle the error or carry a justified
// //lint:ignore at the call site.
//
// A small allowlist keeps the rule signal-heavy: everything in fmt, the
// never-failing writers strings.Builder and bytes.Buffer, and writes to an
// http.ResponseWriter (a client that hangs up mid-response is not
// actionable by the handler).
type DroppedError struct{}

func (DroppedError) Name() string { return "no-dropped-error" }

func (DroppedError) Doc() string {
	return "error results must not be dropped with a bare call or _ assignment " +
		"outside tests; handle them or suppress with a reason"
}

var errorType = types.Universe.Lookup("error").Type()

func (DroppedError) Inspect(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				reportBareCall(p, st.X)
			case *ast.DeferStmt:
				reportBareCall(p, st.Call)
			case *ast.GoStmt:
				reportBareCall(p, st.Call)
			case *ast.AssignStmt:
				reportBlankedErrors(p, st)
			}
			return true
		})
	}
}

// reportBareCall flags x when it is a call whose error result(s) vanish.
func reportBareCall(p *Pass, x ast.Expr) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok || isConversion(p, call) || allowedCallee(p, call) {
		return
	}
	if len(errorResultIndexes(p, call)) > 0 {
		p.Reportf(call.Pos(), "error result of %s is discarded; handle it or ignore it with a reason", calleeName(p, call))
	}
}

// reportBlankedErrors flags `_` targets that receive an error from a call.
func reportBlankedErrors(p *Pass, st *ast.AssignStmt) {
	if len(st.Rhs) == 1 {
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok || isConversion(p, call) || allowedCallee(p, call) {
			return
		}
		for _, i := range errorResultIndexes(p, call) {
			if i < len(st.Lhs) && isBlank(st.Lhs[i]) {
				p.Reportf(st.Lhs[i].Pos(), "error result of %s is discarded with _; handle it or ignore it with a reason", calleeName(p, call))
			}
		}
		return
	}
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) || !isBlank(st.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || isConversion(p, call) || allowedCallee(p, call) {
			continue
		}
		if idx := errorResultIndexes(p, call); len(idx) == 1 && idx[0] == 0 {
			p.Reportf(st.Lhs[i].Pos(), "error result of %s is discarded with _; handle it or ignore it with a reason", calleeName(p, call))
		}
	}
}

// errorResultIndexes returns the result positions of call with type error.
func errorResultIndexes(p *Pass, call *ast.CallExpr) []int {
	t := p.Info.TypeOf(call)
	if t == nil {
		return nil
	}
	if tup, ok := t.(*types.Tuple); ok {
		var idx []int
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errorType) {
				idx = append(idx, i)
			}
		}
		return idx
	}
	if types.Identical(t, errorType) {
		return []int{0}
	}
	return nil
}

// isConversion reports whether call is actually a type conversion.
func isConversion(p *Pass, call *ast.CallExpr) bool {
	return p.Info.Types[call.Fun].IsType()
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// allowedCallee applies the rule's allowlist.
func allowedCallee(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "net/http.ResponseWriter":
		return true
	}
	return false
}

// calleeName renders the callee for a diagnostic.
func calleeName(p *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		return fn.FullName()
	}
	return "call"
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
