package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// LockContract lifts the tree's lock contracts across function and
// package boundaries, where the per-package rules cannot see:
//
//   - //lint:holds obligations are verified at *cross-package* call
//     sites: a helper in internal/journal that documents "caller holds
//     mu" is only as safe as the broker call sites that import it, and
//     those live in a different package than the directive.
//     Same-package call sites stay with mutex-discipline, so no finding
//     is ever reported twice.
//   - //lint:lockorder declarations are checked across call edges using
//     per-function acquisition summaries: a call made while a lock may
//     be held is flagged when the callee — transitively, through the
//     group call graph — may acquire a lock the declared order says
//     must come first. The intraprocedural rule sees only acquisitions
//     spelled out in the same body; this closes the "helper takes the
//     journal mutex for you" gap that makes ABBA deadlocks survive
//     refactors.
//
// Acquisition summaries follow call, dynamic-dispatch and defer edges.
// go-statement edges are excluded (the spawned goroutine acquires on
// its own stack), and bare function references are excluded (a stored
// closure runs at an unknowable time; the call through the variable is
// checked wherever it is resolvable). Locks are matched by field name,
// the same convention the intraprocedural lock-order rule uses.
type LockContract struct{}

func (LockContract) Name() string { return "lock-contract" }

func (LockContract) Doc() string {
	return "cross-package call sites must satisfy the callee's //lint:holds contract, " +
		"and no call may transitively acquire a lock that //lint:lockorder places " +
		"before one already held"
}

// Inspect is a no-op: the rule only has group-wide work.
func (LockContract) Inspect(*Pass) {}

// lockAcqSummary maps each lock field name a function may acquire —
// directly or transitively — to one representative acquisition position
// for diagnostics.
type lockAcqSummary map[string]token.Pos

func (r LockContract) InspectGroup(gp *GroupPass) {
	holds := r.collectGroupHolds(gp)
	order := r.mergedLockOrder(gp)
	if len(holds) == 0 && len(order.before) == 0 {
		return
	}
	var acq map[*FuncNode]lockAcqSummary
	if len(order.before) > 0 {
		acq = r.acquireSummaries(gp.Graph)
	}
	for _, fn := range gp.Graph.Nodes {
		if fn.Body() == nil {
			continue
		}
		if len(holds) > 0 {
			r.checkHolds(gp, fn, holds)
		}
		if len(order.before) > 0 {
			r.checkOrder(gp, fn, order, acq)
		}
	}
}

// collectGroupHolds indexes every //lint:holds contract in the group by
// the function's type object. Malformed directives are skipped silently
// here: mutex-discipline already reports them in the declaring package.
func (LockContract) collectGroupHolds(gp *GroupPass) map[types.Object][]string {
	holds := make(map[types.Object][]string)
	for _, pkg := range gp.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if names, _, found := holdsAnnotation(fd); found && names != nil {
					if obj := pkg.Info.Defs[fd.Name]; obj != nil {
						holds[obj] = names
					}
				}
			}
		}
	}
	return holds
}

// mergedLockOrder composes every package's //lint:lockorder directives
// into one group-wide partial order. Malformed directives and cycles
// are the declaring package's problem (lock-order reports them); the
// merge only reads well-formed pairs.
func (LockContract) mergedLockOrder(gp *GroupPass) *lockOrder {
	silent := func(token.Pos, string, ...any) {}
	merged := &lockOrder{}
	for _, pkg := range gp.Pkgs {
		lo := collectLockOrder(&Pass{Files: pkg.Files}, silent)
		for a, bs := range lo.before {
			for b := range bs {
				merged.add(a, b, lo.decls[a+"<"+b])
			}
		}
	}
	merged.close(silent)
	return merged
}

// acquireSummaries computes, bottom-up over SCCs, the set of lock field
// names each function may acquire.
func (LockContract) acquireSummaries(g *CallGraph) map[*FuncNode]lockAcqSummary {
	return ComputeSummaries(g,
		func(n *FuncNode, get func(*FuncNode) lockAcqSummary) lockAcqSummary {
			out := make(lockAcqSummary)
			for _, op := range lockOpsIn(n.Pkg.Info, n.Body()) {
				if op.acquire() {
					name := lastComponent(op.key)
					if _, ok := out[name]; !ok {
						out[name] = op.pos
					}
				}
			}
			for _, e := range n.Out {
				if e.Kind != EdgeCall && e.Kind != EdgeDynamic && e.Kind != EdgeDefer {
					continue
				}
				for name, pos := range get(e.Callee) {
					if _, ok := out[name]; !ok {
						out[name] = pos
					}
				}
			}
			return out
		},
		func(a, b lockAcqSummary) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		})
}

// nodeEntry is the function's entry lockset from its own holds
// directive.
func nodeEntry(fn *FuncNode) lockFact {
	if fn.Decl != nil {
		return entryFact(funcBody{decl: fn.Decl, body: fn.Decl.Body})
	}
	return lockFact{}
}

// checkHolds verifies cross-package call sites against the callee's
// //lint:holds contract under the must-lockset.
func (LockContract) checkHolds(gp *GroupPass, fn *FuncNode, holds map[types.Object][]string) {
	info := fn.Pkg.Info
	cfg := BuildCFG(fn.Body(), CFGOptions{IsExit: func(c *ast.CallExpr) bool { return isPanicCall(info, c) }})
	res := Forward(cfg, &lockFlow{info: info, entry: nodeEntry(fn)})
	res.Walk(func(_ *Block, n ast.Node, before lockFact) {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			// The deferred call runs at exit under an unknowable lockset.
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				callee, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || callee.Pkg() == nil || callee.Pkg().Path() == fn.Pkg.Path {
					// Same-package sites belong to mutex-discipline.
					return true
				}
				names := holds[callee]
				if len(names) == 0 {
					return true
				}
				base, ok := exprKey(sel.X)
				if !ok {
					return true
				}
				for _, lock := range resolveHoldKeys(names, base) {
					if _, held := before.held[lock]; !held {
						gp.Reportf(x.Pos(), "call to %s requires %s held (//lint:holds in %s) but it is not held on every path",
							fnDisplay(callee), lock, callee.Pkg().Path())
					}
				}
			}
			return true
		})
	})
}

// checkOrder flags call sites whose callee may — transitively — acquire
// a lock the declared order places before one the caller may already
// hold.
func (LockContract) checkOrder(gp *GroupPass, fn *FuncNode, order *lockOrder, acq map[*FuncNode]lockAcqSummary) {
	info := fn.Pkg.Info
	bySite := make(map[ast.Node][]*CallEdge)
	for _, e := range fn.Out {
		if e.Kind == EdgeCall || e.Kind == EdgeDynamic {
			bySite[e.Site] = append(bySite[e.Site], e)
		}
	}
	if len(bySite) == 0 {
		return
	}
	cfg := BuildCFG(fn.Body(), CFGOptions{IsExit: func(c *ast.CallExpr) bool { return isPanicCall(info, c) }})
	res := Forward(cfg, &lockFlow{info: info, entry: nodeEntry(fn), union: true})
	res.Walk(func(_ *Block, n ast.Node, before lockFact) {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, isLit := x.(*ast.FuncLit); isLit {
				return false
			}
			call, isCall := x.(*ast.CallExpr)
			if !isCall {
				return true
			}
			reported := make(map[string]bool)
			for _, e := range bySite[call] {
				for name, pos := range acq[e.Callee] {
					for heldKey := range before.held {
						held := lastComponent(heldKey)
						if name == held || !order.before[name][held] {
							continue
						}
						if key := name + "/" + heldKey; !reported[key] {
							reported[key] = true
							p := gp.Fset.Position(pos)
							gp.Reportf(call.Pos(), "call may acquire %s (%s:%d) while %s may be held; declared lock order is %s < %s",
								name, filepath.Base(p.Filename), p.Line, heldKey, name, held)
						}
					}
				}
			}
			return true
		})
	})
}
