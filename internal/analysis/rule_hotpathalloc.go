package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc budgets allocations on the serving loop's critical path.
// A function whose doc comment carries
//
//	//lint:hotpath <why this path is hot>
//
// roots a hot region: everything reachable from it through call,
// dynamic-dispatch, defer and function-reference edges — but not
// go-statements, whose work leaves the latency path — is scanned for
// allocation sites:
//
//   - heap-escaping composite literals (&T{...}) and slice/map literals;
//     plain value struct literals are stack-friendly and exempt,
//   - make and new,
//   - append (growth reallocates the backing array),
//   - fmt.Sprintf and friends (always allocate their result),
//   - closure literals (the closure object and its captures),
//   - interface boxing: a non-pointer-shaped, non-constant value passed
//     to an interface parameter.
//
// An allocation the author has measured and accepted is excused with
//
//	//lint:allocok <why the allocation is acceptable>
//
// on the allocating line or the line above, or in a function's doc
// comment to accept the whole function (a constructor that exists to
// allocate). The reason is mandatory: a bare //lint:allocok is itself
// a finding, so every exemption in the tree carries an argument.
//
// This encodes the paper's real-time constraint directly: Nimbus
// quotes prices and executes purchases inside an interactive
// marketplace loop (Figure 1), so the Buy path is a per-request
// latency budget, and allocations there become GC pressure at exactly
// the throughput the experiments measure.
type HotPathAlloc struct{}

func (HotPathAlloc) Name() string { return "hotpath-alloc" }

func (HotPathAlloc) Doc() string {
	return "functions reachable from a //lint:hotpath root must not allocate " +
		"(composite literals, make/new, append, fmt.Sprintf, closures, interface " +
		"boxing) unless the site or function is excused by //lint:allocok <why>"
}

// Inspect is a no-op: the rule needs the group call graph.
func (HotPathAlloc) Inspect(*Pass) {}

const (
	hotpathPrefix = "//lint:hotpath"
	allocokPrefix = "//lint:allocok"
)

// directiveRest returns the directive's payload when c starts with
// prefix at a word boundary.
func directiveRest(text, prefix string) (string, bool) {
	rest, ok := strings.CutPrefix(text, prefix)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

func (r HotPathAlloc) InspectGroup(gp *GroupPass) {
	rootOf := r.reachableFromRoots(gp.Graph)
	if len(rootOf) == 0 {
		return
	}
	okLines, okFuncs := r.collectAllocok(gp)
	seen := make(map[token.Pos]bool)
	for _, nd := range gp.Graph.Nodes {
		root, hot := rootOf[nd]
		if !hot || nd.Body() == nil {
			continue
		}
		if nd.Decl != nil && okFuncs[nd.Decl] {
			continue
		}
		r.scanAllocs(gp, nd, root, okLines, seen)
	}
}

// reachableFromRoots finds every //lint:hotpath root and BFS-closes the
// hot region over all edge kinds except go-statements. Each reached
// function remembers the first root that claimed it, for diagnostics.
func (HotPathAlloc) reachableFromRoots(g *CallGraph) map[*FuncNode]string {
	rootOf := make(map[*FuncNode]string)
	var queue []*FuncNode
	for _, nd := range g.Nodes {
		if nd.Decl == nil || nd.Decl.Doc == nil {
			continue
		}
		for _, c := range nd.Decl.Doc.List {
			if _, ok := directiveRest(c.Text, hotpathPrefix); ok {
				rootOf[nd] = shortFuncName(nd.Name)
				queue = append(queue, nd)
				break
			}
		}
	}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		for _, e := range nd.Out {
			if e.Kind == EdgeGo {
				continue
			}
			if _, ok := rootOf[e.Callee]; !ok {
				rootOf[e.Callee] = rootOf[nd]
				queue = append(queue, e.Callee)
			}
		}
	}
	return rootOf
}

// shortFuncName strips the directory part of a node name:
// "nimbus/internal/market.(*Broker).Buy" → "market.(*Broker).Buy".
func shortFuncName(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// collectAllocok indexes //lint:allocok directives: by file line (the
// directive covers its own line and the next) and by function
// declaration whose doc carries one. Bare directives are findings.
func (r HotPathAlloc) collectAllocok(gp *GroupPass) (map[string]map[int]bool, map[*ast.FuncDecl]bool) {
	okLines := make(map[string]map[int]bool)
	okFuncs := make(map[*ast.FuncDecl]bool)
	for _, pkg := range gp.Pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					reason, ok := directiveRest(c.Text, allocokPrefix)
					if !ok {
						continue
					}
					if reason == "" {
						gp.Reportf(c.Pos(), "missing justification: want %s <why the allocation is acceptable>", allocokPrefix)
						continue
					}
					pos := gp.Fset.Position(c.Pos())
					if okLines[pos.Filename] == nil {
						okLines[pos.Filename] = make(map[int]bool)
					}
					okLines[pos.Filename][pos.Line] = true
				}
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if reason, ok := directiveRest(c.Text, allocokPrefix); ok && reason != "" {
						okFuncs[fd] = true
					}
				}
			}
		}
	}
	return okLines, okFuncs
}

// scanAllocs reports the allocation sites in one hot function.
func (r HotPathAlloc) scanAllocs(gp *GroupPass, nd *FuncNode, root string, okLines map[string]map[int]bool, seen map[token.Pos]bool) {
	info := nd.Pkg.Info
	excused := func(pos token.Pos) bool {
		p := gp.Fset.Position(pos)
		lines := okLines[p.Filename]
		return lines[p.Line] || lines[p.Line-1]
	}
	report := func(pos token.Pos, what string) {
		if seen[pos] || excused(pos) {
			return
		}
		seen[pos] = true
		gp.Reportf(pos, "%s in hot path rooted at %s; hoist it or justify with %s <why>", what, root, allocokPrefix)
	}
	// addressed marks composite literals already reported through their
	// enclosing &-operator so they are not flagged twice.
	addressed := make(map[ast.Expr]bool)
	ast.Inspect(nd.Body(), func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "closure literal allocates")
			// Its body is a separate node, reachable via the ref edge.
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					addressed[lit] = true
					report(x.Pos(), "composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if addressed[x] {
				return true
			}
			if tv, ok := info.Types[x]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "slice literal allocates its backing array")
				case *types.Map:
					report(x.Pos(), "map literal allocates")
				}
			}
		case *ast.CallExpr:
			r.scanCallAlloc(info, nd, x, report)
		}
		return true
	})
}

// scanCallAlloc classifies one call as an allocation site: allocating
// builtins, the fmt.Sprint family, or interface boxing of its
// arguments.
func (r HotPathAlloc) scanCallAlloc(info *types.Info, nd *FuncNode, call *ast.CallExpr, report func(token.Pos, string)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			switch fn.Name() {
			case "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf":
				report(call.Pos(), "fmt."+fn.Name()+" allocates its result")
				return
			}
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if ok && sig.Params().Len() > 0 {
		for i, arg := range call.Args {
			if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
				continue // a spread slice is passed as-is, no per-element boxing
			}
			pt := paramTypeAt(sig, i)
			if pt == nil || !types.IsInterface(pt) {
				continue
			}
			at, ok := info.Types[arg]
			if !ok || at.Type == nil || at.Value != nil || at.IsNil() {
				continue
			}
			if types.IsInterface(at.Type) || pointerShaped(at.Type) {
				continue
			}
			report(arg.Pos(), "passing "+types.TypeString(at.Type, types.RelativeTo(nd.Pkg.Types))+" boxes it into an interface")
		}
	}
}

// paramTypeAt resolves the parameter type seen by argument i,
// unwrapping the variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// pointerShaped reports whether boxing a value of t into an interface
// stores the value directly in the interface word, with no allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
