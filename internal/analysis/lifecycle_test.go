package analysis

import "testing"

// The publication-and-lifecycle rule family: snapshot immutability,
// resource release, WaitGroup balance, and atomic/plain mixing.

func TestSnapshotImmutabilityGolden(t *testing.T) {
	checkGolden(t, "snapshot", []Rule{SnapshotImmutability{}})
}

func TestResourceLifecycleGolden(t *testing.T) {
	checkGolden(t, "resource", []Rule{ResourceLifecycle{}})
}

// TestResourceLifecycleCrossPackage proves the owns/takes summaries
// survive a package boundary: the constructor and the adopting sink
// live in resipa/lib, the leaks in resipa/app.
func TestResourceLifecycleCrossPackage(t *testing.T) {
	checkGoldenGroup(t, "resipa", []Rule{ResourceLifecycle{}})
}

func TestWaitGroupBalanceGolden(t *testing.T) {
	checkGolden(t, "waitgroup", []Rule{WaitGroupBalance{}})
}

func TestAtomicPlainMixGolden(t *testing.T) {
	checkGolden(t, "atomicmix", []Rule{AtomicPlainMix{}})
}
