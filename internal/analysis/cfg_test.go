package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFromSrc parses one function body and builds its CFG; calls to a
// function literally named "panic" are treated as exits, matching what
// the type-informed detector does on real packages.
func buildFromSrc(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing %q: %v", body, err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body, CFGOptions{IsExit: func(c *ast.CallExpr) bool {
		id, ok := c.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}})
}

// trapped reports whether the CFG has entry-reachable code from which
// the exit is unreachable — the goroutine-leak criterion.
func trapped(g *CFG) bool {
	reach, exits := g.ReachableFromEntry(), g.ReachesExit()
	for _, b := range g.Blocks {
		if reach[b] && !exits[b] {
			return true
		}
	}
	return false
}

func TestCFGTermination(t *testing.T) {
	cases := []struct {
		name, body string
		trapped    bool
	}{
		{"straight line", "x := 1\n_ = x", false},
		{"bounded loop", "for i := 0; i < 10; i++ {\nwork()\n}", false},
		{"range loop", "for range xs {\nwork()\n}", false},
		{"infinite loop", "for {\nwork()\n}", true},
		{"infinite with break", "for {\nif done() {\nbreak\n}\n}", false},
		{"infinite with return", "for {\nif done() {\nreturn\n}\n}", false},
		{"labeled break from inner", "outer:\nfor {\nfor {\nbreak outer\n}\n}", false},
		{"labeled break to inner only", "for {\ninner:\nfor {\nbreak inner\n}\n}", true},
		{"select with exit case", "for {\nselect {\ncase <-done:\nreturn\ncase <-tick:\n}\n}", false},
		{"select without exit", "for {\nselect {\ncase <-tick:\nwork()\n}\n}", true},
		{"empty select blocks forever", "work()\nselect {}", true},
		{"goto out of loop", "for {\nif done() {\ngoto out\n}\n}\nout:\nwork()", false},
		{"panic leaves", "for {\npanic(1)\n}", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := buildFromSrc(t, c.body)
			if got := trapped(g); got != c.trapped {
				t.Errorf("trapped = %v, want %v", got, c.trapped)
			}
		})
	}
}

func TestCFGExitPredecessors(t *testing.T) {
	// Two returns, one panic and no fall-off-the-end: exactly three edges
	// into the exit block.
	g := buildFromSrc(t, `if a {
return
}
if b {
panic("x")
}
return`)
	if n := len(g.Exit.Preds); n != 3 {
		t.Errorf("exit has %d predecessors, want 3", n)
	}
	if len(g.Exit.Nodes) != 0 {
		t.Errorf("exit block holds %d nodes, want none", len(g.Exit.Nodes))
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	// fallthrough chains case 0 into case 1; both bodies must be on a
	// path from entry to exit.
	g := buildFromSrc(t, `switch k {
case 0:
a()
fallthrough
case 1:
b()
}`)
	reach, exits := g.ReachableFromEntry(), g.ReachesExit()
	for _, b := range g.Blocks {
		if reach[b] && !exits[b] {
			t.Errorf("block %d reachable but cannot exit", b.Index)
		}
	}
}

func TestCFGSelectWithDefault(t *testing.T) {
	// A select with a default never blocks, but control still flows
	// through exactly one clause: the head branches to every clause
	// (default included) and nothing else — there is no head→after
	// shortcut edge like a default-less switch has.
	g := buildFromSrc(t, "select {\ncase <-ch:\na()\ndefault:\nb()\n}\nuse()")
	head := g.Entry
	if len(head.Succs) != 2 {
		t.Fatalf("select head has %d successors, want one per clause (2)", len(head.Succs))
	}
	after := findUse(t, g)
	clause := make(map[*Block]bool, len(head.Succs))
	for _, s := range head.Succs {
		if s == after {
			t.Error("head has a direct edge to the after block; every path must run a clause")
		}
		clause[s] = true
	}
	for _, p := range after.Preds {
		if !clause[p] {
			t.Errorf("after block has predecessor %d that is not a clause body", p.Index)
		}
	}
	if trapped(g) {
		t.Error("select with default trapped the function; it never blocks")
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	// A defer inside a loop body runs once per iteration as far as the
	// dataflow rules care: its node must land in a block on the loop
	// cycle, not get hoisted into the head or past the loop.
	g := buildFromSrc(t, "for i := 0; i < n; i++ {\ndefer cleanup()\nwork()\n}\nuse()")
	var host *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				host = b
			}
		}
	}
	if host == nil {
		t.Fatal("no block holds the DeferStmt node")
	}
	if host == g.Entry || host == findUse(t, g) {
		t.Fatalf("defer landed in block %d, outside the loop body", host.Index)
	}
	// The host block must be on the loop cycle: reachable from itself.
	seen := map[*Block]bool{}
	queue := append([]*Block(nil), host.Succs...)
	onCycle := false
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b == host {
			onCycle = true
			break
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		queue = append(queue, b.Succs...)
	}
	if !onCycle {
		t.Error("defer block is not on the loop cycle; per-iteration defers would be lost")
	}
	if trapped(g) {
		t.Error("bounded loop with defer trapped the function")
	}
}

// TestForwardReachesFixpoint exercises the dataflow engine with a tiny
// gen-kill problem over idents: "x" is generated by `gen()` statements
// and killed by `kill()`, with must-join — mirroring the lockset shape.
type toyFlow struct{}

func (toyFlow) Entry() bool { return false }
func (toyFlow) Transfer(f bool, n ast.Node) bool {
	call, ok := n.(*ast.ExprStmt)
	if !ok {
		return f
	}
	if c, ok := call.X.(*ast.CallExpr); ok {
		if id, ok := c.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "gen":
				return true
			case "kill":
				return false
			}
		}
	}
	return f
}
func (toyFlow) Join(a, b bool) bool  { return a && b }
func (toyFlow) Equal(a, b bool) bool { return a == b }

func TestForwardReachesFixpoint(t *testing.T) {
	// gen() on only one branch: the join must lose the fact; gen() before
	// the branch: the join keeps it.
	oneBranch := buildFromSrc(t, "if c {\ngen()\n}\nuse()")
	res := Forward(oneBranch, toyFlow{})
	fact, reached := res.After(findUse(t, oneBranch))
	if !reached || fact {
		t.Errorf("one-branch gen: fact at use = %v (reached %v), want false", fact, reached)
	}
	bothPaths := buildFromSrc(t, "gen()\nif c {\nwork()\n}\nuse()")
	res = Forward(bothPaths, toyFlow{})
	fact, reached = res.After(findUse(t, bothPaths))
	if !reached || !fact {
		t.Errorf("dominating gen: fact at use = %v (reached %v), want true", fact, reached)
	}
	// A loop that kills on its back edge converges to "not held" at the
	// head despite the initial optimistic pass.
	loop := buildFromSrc(t, "gen()\nfor i := 0; i < n; i++ {\nkill()\n}\nuse()")
	res = Forward(loop, toyFlow{})
	fact, reached = res.After(findUse(t, loop))
	if !reached || fact {
		t.Errorf("loop kill: fact at use = %v (reached %v), want false", fact, reached)
	}
}

// findUse returns the block containing the use() call.
func findUse(t *testing.T, g *CFG) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if c, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "use" {
						return b
					}
				}
			}
		}
	}
	t.Fatal("no use() block found")
	return nil
}
