package analysis

// Interprocedural taint engine behind the noise-taint rule. The lattice
// element is the set of tainted local objects; propagation runs on the
// CFG/dataflow engine, and function boundaries are crossed with
// summaries computed bottom-up over the call graph's SCCs:
//
//	flows         per parameter, the bitset of results the parameter can
//	              reach without passing a sanitizer;
//	leaks         per parameter, how the parameter escapes inside the
//	              callee (a sink call, or a store into an unmarked
//	              field) — the caller is reported when it passes taint;
//	resultTainted the results carrying taint born inside the function
//	              (a source read or source call).
//
// Sources are *marked struct fields* (built-in configuration plus
// //lint:source directives) and *source functions* (whose raw-model
// slice results are born tainted). The sanitizer and //lint:declassify
// functions scrub: their results are clean no matter what flows in.
// Sinks release bytes to the outside world; passing a tainted value —
// or any struct type that still carries a marked field — is a finding.

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"unicode/utf8"
)

// FuncRef names declared functions or methods by declaring package path
// and bare name; it matches interface methods and concrete methods
// alike, so one ref covers every implementation in a package.
type FuncRef struct{ Pkg, Name string }

// FieldRef names a struct field by package path, type name and field
// name.
type FieldRef struct{ Pkg, Type, Field string }

// sourcePrefix marks a struct field as raw-model data:
//
//	//lint:source <Type>.<Field>
//
// The directive may sit in any file of the package declaring the type.
const sourcePrefix = "//lint:source"

// declassifyPrefix marks a function or interface method whose result is
// a safe aggregate of its (possibly raw) inputs — a scalar loss, a
// count — and therefore clean:
//
//	//lint:declassify <reason>
const declassifyPrefix = "//lint:declassify"

// taintLeak records how a value escapes inside a function.
type taintLeak struct {
	pos  token.Pos
	what string
}

// taintSummary is one function's interprocedural behaviour.
type taintSummary struct {
	nparams       int
	flows         []uint64 // per param: bitset of results reached
	leaks         []*taintLeak
	resultTainted uint64
}

func taintSummaryEqual(a, b *taintSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.nparams != b.nparams || a.resultTainted != b.resultTainted {
		return false
	}
	for i := range a.flows {
		if a.flows[i] != b.flows[i] {
			return false
		}
	}
	// Leaks are compared by presence only. The clause text embeds the
	// callee's clause ("passes it to f, which ..."), so inside a recursive
	// SCC it gains a layer per fixpoint iteration; comparing it would keep
	// the iteration alive forever. The abstract fact callers consume — does
	// parameter i escape — is the presence bit.
	for i := range a.leaks {
		if (a.leaks[i] == nil) != (b.leaks[i] == nil) {
			return false
		}
	}
	return true
}

// truncateClause bounds a leak chain's rendering: a long call chain (or a
// recursive cycle caught mid-iteration) would otherwise nest "passes it
// to f, which ..." clauses without limit.
func truncateClause(s string) string {
	const max = 240
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + " ..."
}

// taintWorld is the group-wide context: resolved sources, sanitizers,
// sinks, declassifications and the summaries under computation.
type taintWorld struct {
	graph    *CallGraph
	marked   map[types.Object]bool
	declass  map[types.Object]bool
	isSource func(*types.Func) bool
	isSan    func(*types.Func) bool
	isSink   func(*types.Func) bool
	// lookup resolves a node's current summary; during the bottom-up
	// phase it is the fixpoint driver's getter, afterwards the final map.
	lookup func(*FuncNode) *taintSummary
}

// matchRef reports whether fn matches any of the refs.
func matchRef(refs []FuncRef, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	for _, r := range refs {
		if r.Pkg == pkg && r.Name == name {
			return true
		}
	}
	return false
}

// isModelSlice reports whether t is (or derefs to) a []float64 — the
// shape of a raw optimal-model vector. Source functions taint only
// results of this shape, so their secondary results (errors, counts)
// stay clean.
func isModelSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// collectSourceFields resolves the built-in field refs and every
// //lint:source directive in the group to field objects. Malformed or
// unresolvable directives are reported.
func collectSourceFields(gp *GroupPass, builtin []FieldRef, report func(pos token.Pos, format string, args ...any)) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	mark := func(pkg *Package, typeName, fieldName string) bool {
		if pkg.Types == nil {
			return false
		}
		tn, ok := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			return false
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return false
		}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == fieldName {
				marked[f] = true
				return true
			}
		}
		return false
	}
	byPath := make(map[string]*Package, len(gp.Pkgs))
	for _, pkg := range gp.Pkgs {
		byPath[pkg.Path] = pkg
	}
	for _, ref := range builtin {
		if pkg, ok := byPath[ref.Pkg]; ok {
			mark(pkg, ref.Type, ref.Field)
		}
	}
	for _, pkg := range gp.Pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					if !strings.HasPrefix(c.Text, sourcePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, sourcePrefix)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue
					}
					fields := strings.Fields(rest)
					var typeName, fieldName string
					if len(fields) == 1 {
						if t, fl, ok := strings.Cut(fields[0], "."); ok {
							typeName, fieldName = t, fl
						}
					}
					if typeName == "" || fieldName == "" {
						report(c.Pos(), "malformed directive: want %s <Type>.<Field>", sourcePrefix)
						continue
					}
					if !mark(pkg, typeName, fieldName) {
						report(c.Pos(), "%s names unknown field %s.%s in package %s", sourcePrefix, typeName, fieldName, pkg.Path)
					}
				}
			}
		}
	}
	return marked
}

// collectDeclassified indexes every //lint:declassify directive on a
// function declaration or interface method. A directive without a
// reason is reported.
func collectDeclassified(gp *GroupPass, report func(pos token.Pos, format string, args ...any)) map[types.Object]bool {
	declass := make(map[types.Object]bool)
	directive := func(doc *ast.CommentGroup) (found, valid bool, pos token.Pos) {
		if doc == nil {
			return false, false, token.NoPos
		}
		for _, c := range doc.List {
			if !strings.HasPrefix(c.Text, declassifyPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, declassifyPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			return true, len(strings.Fields(rest)) >= 1, c.Pos()
		}
		return false, false, token.NoPos
	}
	for _, pkg := range gp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if found, valid, pos := directive(n.Doc); found {
						if !valid {
							report(pos, "malformed directive: want %s <reason>", declassifyPrefix)
						} else if obj := pkg.Info.Defs[n.Name]; obj != nil {
							declass[obj] = true
						}
					}
					return false // no interface literals to find inside bodies we care to annotate
				case *ast.InterfaceType:
					for _, m := range n.Methods.List {
						if len(m.Names) == 0 {
							continue
						}
						if found, valid, pos := directive(m.Doc); found {
							if !valid {
								report(pos, "malformed directive: want %s <reason>", declassifyPrefix)
								continue
							}
							for _, name := range m.Names {
								if obj := pkg.Info.Defs[name]; obj != nil {
									declass[obj] = true
								}
							}
						}
					}
				}
				return true
			})
		}
	}
	return declass
}

// --- per-function propagation -------------------------------------------

// taintFact is the set of tainted objects; maps are treated as
// immutable by the transfer function.
type taintFact map[types.Object]bool

func (f taintFact) with(obj types.Object) taintFact {
	if obj == nil || f[obj] {
		return f
	}
	g := make(taintFact, len(f)+1)
	for k := range f {
		g[k] = true
	}
	g[obj] = true
	return g
}

func (f taintFact) without(obj types.Object) taintFact {
	if obj == nil || !f[obj] {
		return f
	}
	g := make(taintFact, len(f))
	for k := range f {
		if k != obj {
			g[k] = true
		}
	}
	return g
}

// taintFlow implements Flow[taintFact] for one function body.
type taintFlow struct {
	w    *taintWorld
	pkg  *Package
	node *FuncNode
	// sourcesActive enables source fields/functions; summary runs that
	// track a single parameter switch them off.
	sourcesActive bool
	entry         taintFact
	// ranges maps a range operand expression (the CFG head node) back to
	// its statement so key/value variables can be tainted.
	ranges map[ast.Node]*ast.RangeStmt
}

func newTaintFlow(w *taintWorld, n *FuncNode, entry taintFact, sourcesActive bool) *taintFlow {
	tf := &taintFlow{
		w:             w,
		pkg:           n.Pkg,
		node:          n,
		sourcesActive: sourcesActive,
		entry:         entry,
		ranges:        make(map[ast.Node]*ast.RangeStmt),
	}
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		if rs, ok := x.(*ast.RangeStmt); ok {
			tf.ranges[rs.X] = rs
		}
		return !isFuncLit(x)
	})
	return tf
}

func isFuncLit(n ast.Node) bool { _, ok := n.(*ast.FuncLit); return ok }

func (tf *taintFlow) Entry() taintFact { return tf.entry }

func (tf *taintFlow) Join(a, b taintFact) taintFact {
	if len(a) == 0 {
		return b
	}
	out := make(taintFact, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (tf *taintFlow) Equal(a, b taintFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (tf *taintFlow) Transfer(f taintFact, n ast.Node) taintFact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return tf.assign(f, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				f = tf.valueSpec(f, vs)
			}
		}
		return f
	case *ast.ExprStmt:
		// copy(dst, src) with a tainted source taints the destination.
		if call, ok := n.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := tf.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" && len(call.Args) == 2 {
					if tf.tainted(f, call.Args[1]) {
						f = f.with(rootObj(tf.pkg.Info, call.Args[0]))
					}
				}
			}
		}
		return f
	case ast.Expr:
		if rs, ok := tf.ranges[n]; ok && tf.tainted(f, rs.X) {
			for _, lhs := range []ast.Expr{rs.Key, rs.Value} {
				if id, ok := lhs.(*ast.Ident); ok {
					f = f.with(identObj(tf.pkg.Info, id))
				}
			}
		}
		return f
	}
	return f
}

func (tf *taintFlow) valueSpec(f taintFact, vs *ast.ValueSpec) taintFact {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		bits := tf.multiValueBits(f, vs.Values[0])
		for i, name := range vs.Names {
			if bits&(1<<uint(i)) != 0 {
				f = f.with(tf.pkg.Info.Defs[name])
			}
		}
		return f
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) && tf.tainted(f, vs.Values[i]) {
			f = f.with(tf.pkg.Info.Defs[name])
		}
	}
	return f
}

func (tf *taintFlow) assign(f taintFact, as *ast.AssignStmt) taintFact {
	var bits func(i int) bool
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		b := tf.multiValueBits(f, as.Rhs[0])
		bits = func(i int) bool { return b&(1<<uint(i)) != 0 }
	} else {
		bits = func(i int) bool { return i < len(as.Rhs) && tf.tainted(f, as.Rhs[i]) }
	}
	for i, lhs := range as.Lhs {
		t := bits(i)
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := identObj(tf.pkg.Info, lhs)
			if t {
				f = f.with(obj)
			} else if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
				f = f.without(obj) // strong update on whole-variable writes
			}
		case *ast.SelectorExpr:
			// Field stores are checked (and reported) by the walk phase;
			// storing into a *marked* field keeps the container clean by
			// construction — readers re-taint through the mark.
		case *ast.IndexExpr, *ast.StarExpr:
			if t {
				f = f.with(rootObj(tf.pkg.Info, lhs))
			}
		}
	}
	return f
}

// multiValueBits evaluates a multi-result RHS (call, type assertion,
// map index) to a per-result taint bitset.
func (tf *taintFlow) multiValueBits(f taintFact, e ast.Expr) uint64 {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return tf.callBits(f, e)
	case *ast.TypeAssertExpr:
		if tf.tainted(f, e.X) {
			return 1
		}
	case *ast.IndexExpr:
		if tf.tainted(f, e.X) {
			return 1
		}
	case *ast.UnaryExpr: // v, ok := <-ch
		if tf.tainted(f, e.X) {
			return 1
		}
	}
	return 0
}

// tainted reports whether the expression evaluates to a tainted value
// under fact f.
func (tf *taintFlow) tainted(f taintFact, e ast.Expr) bool {
	info := tf.pkg.Info
	switch e := e.(type) {
	case *ast.Ident:
		return f[identObj(info, e)]
	case *ast.SelectorExpr:
		obj := info.Uses[e.Sel]
		if tf.sourcesActive && tf.w.marked[obj] {
			return true
		}
		if _, isFn := obj.(*types.Func); isFn {
			return false // method value
		}
		return tf.tainted(f, e.X)
	case *ast.IndexExpr:
		return tf.tainted(f, e.X)
	case *ast.IndexListExpr:
		return tf.tainted(f, e.X)
	case *ast.SliceExpr:
		return tf.tainted(f, e.X)
	case *ast.StarExpr:
		return tf.tainted(f, e.X)
	case *ast.ParenExpr:
		return tf.tainted(f, e.X)
	case *ast.TypeAssertExpr:
		return tf.tainted(f, e.X)
	case *ast.UnaryExpr:
		return tf.tainted(f, e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ, token.LAND, token.LOR:
			return false // comparisons yield booleans, not data
		}
		return tf.tainted(f, e.X) || tf.tainted(f, e.Y)
	case *ast.CallExpr:
		return tf.callBits(f, e) != 0
	case *ast.CompositeLit:
		t := info.TypeOf(e)
		if t != nil {
			if _, isStruct := t.Underlying().(*types.Struct); isStruct {
				// Field stores are screened individually by the walk
				// phase; the container itself stays clean.
				return false
			}
		}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if tf.tainted(f, el) {
				return true
			}
		}
		return false
	}
	return false
}

// callBits computes the per-result taint bitset of a call expression.
func (tf *taintFlow) callBits(f taintFact, call *ast.CallExpr) uint64 {
	info := tf.pkg.Info
	// Conversions pass taint through.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && tf.tainted(f, call.Args[0]) {
			return 1
		}
		return 0
	}
	fn, recv, lit := calleeOf(info, call)
	// Builtins: append propagates, everything else scrubs (len, cap, ...).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fn == nil && lit == nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				for _, a := range call.Args {
					if tf.tainted(f, a) {
						return 1
					}
				}
			}
			return 0
		}
	}
	anyArgTainted := func() bool {
		if recv != nil && tf.tainted(f, recv) {
			return true
		}
		for _, a := range call.Args {
			if tf.tainted(f, a) {
				return true
			}
		}
		return false
	}
	if fn != nil {
		if tf.w.isSan(fn) || tf.w.declass[fn] {
			return 0
		}
		if tf.sourcesActive && tf.w.isSource(fn) {
			return modelResultBits(fn)
		}
		targets := tf.calleeNodes(fn, lit)
		if len(targets) > 0 {
			return tf.summaryBits(f, call, recv, targets)
		}
		// Out-of-group callee: conservatively assume taint flows through.
		if anyArgTainted() {
			return ^uint64(0)
		}
		return 0
	}
	if lit != nil {
		if node := tf.w.graph.LitNode(lit); node != nil {
			return tf.summaryBits(f, call, nil, []*FuncNode{node})
		}
	}
	// Call through a function value: unknown target.
	if anyArgTainted() {
		return ^uint64(0)
	}
	return 0
}

// calleeNodes resolves the group nodes a call to fn can land in.
func (tf *taintFlow) calleeNodes(fn *types.Func, lit *ast.FuncLit) []*FuncNode {
	if fn == nil {
		return nil
	}
	if IsInterfaceMethod(fn) {
		return tf.w.graph.DynamicTargets(fn)
	}
	if node := tf.w.graph.byObj[fn]; node != nil {
		return []*FuncNode{node}
	}
	return nil
}

// summaryBits folds the callee summaries over the call's arguments.
func (tf *taintFlow) summaryBits(f taintFact, call *ast.CallExpr, recv ast.Expr, targets []*FuncNode) uint64 {
	var bits uint64
	for _, target := range targets {
		s := tf.w.lookup(target)
		if s == nil {
			continue
		}
		if tf.sourcesActive {
			bits |= s.resultTainted
		}
		forEachTaintedArg(tf, f, call, recv, s.nparams, func(idx int) {
			if idx < len(s.flows) {
				bits |= s.flows[idx]
			}
		})
	}
	return bits
}

// forEachTaintedArg maps tainted call arguments (receiver included) to
// callee parameter indices.
func forEachTaintedArg(tf *taintFlow, f taintFact, call *ast.CallExpr, recv ast.Expr, nparams int, visit func(idx int)) {
	clamp := func(i int) int {
		if nparams == 0 {
			return 0
		}
		if i >= nparams {
			return nparams - 1 // variadic tail
		}
		return i
	}
	offset := 0
	if recv != nil {
		offset = 1
		if tf.tainted(f, recv) {
			visit(0)
		}
	}
	for i, a := range call.Args {
		if tf.tainted(f, a) {
			visit(clamp(i + offset))
		}
	}
}

// modelResultBits taints the []float64-shaped results of a source
// function.
func modelResultBits(fn *types.Func) uint64 {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	var bits uint64
	for i := 0; i < sig.Results().Len() && i < 64; i++ {
		if isModelSlice(sig.Results().At(i).Type()) {
			bits |= 1 << uint(i)
		}
	}
	return bits
}

// calleeOf resolves the called function at a call site: a declared
// function or method (with the receiver expression for ordinary method
// calls), or an immediately invoked literal.
func calleeOf(info *types.Info, call *ast.CallExpr) (fn *types.Func, recv ast.Expr, lit *ast.FuncLit) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[f.Sel].(*types.Func)
		if fn != nil {
			if s, ok := info.Selections[f]; ok && s.Kind() == types.MethodVal {
				recv = f.X
			}
		}
	case *ast.FuncLit:
		lit = f
	}
	return fn, recv, lit
}

// identObj resolves an identifier in either use or definition position.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// rootObj walks to the base identifier of an access path: x.f[i] → x.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return identObj(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// paramObjs lists a function's parameter objects in summary order:
// receiver first, then declared parameters; nil for unnamed slots.
func paramObjs(n *FuncNode) []types.Object {
	info := n.Pkg.Info
	var fields []*ast.Field
	if n.Decl != nil {
		if n.Decl.Recv != nil {
			fields = append(fields, n.Decl.Recv.List...)
		}
		if n.Decl.Type.Params != nil {
			fields = append(fields, n.Decl.Type.Params.List...)
		}
	} else if n.Lit.Type.Params != nil {
		fields = append(fields, n.Lit.Type.Params.List...)
	}
	var out []types.Object
	for _, f := range fields {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// resultObjs lists the named result objects (nil for unnamed) and the
// result count.
func resultObjs(n *FuncNode) (count int, named []types.Object) {
	info := n.Pkg.Info
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	if ft.Results == nil {
		return 0, nil
	}
	for _, f := range ft.Results.List {
		if len(f.Names) == 0 {
			count++
			named = append(named, nil)
			continue
		}
		for _, name := range f.Names {
			count++
			named = append(named, info.Defs[name])
		}
	}
	return count, named
}

// typeExposesMarked walks a type's (JSON-visible) struct fields looking
// for a marked source field: marshaling such a value serializes the raw
// model even though the value itself carries no flow-taint.
func typeExposesMarked(marked map[types.Object]bool, t types.Type) (fieldName string, found bool) {
	return exposedField(marked, t, make(map[types.Type]bool), 0)
}

func exposedField(marked map[types.Object]bool, t types.Type, seen map[types.Type]bool, depth int) (string, bool) {
	if t == nil || depth > 4 || seen[t] {
		return "", false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return exposedField(marked, u.Elem(), seen, depth)
	case *types.Slice:
		return exposedField(marked, u.Elem(), seen, depth+1)
	case *types.Array:
		return exposedField(marked, u.Elem(), seen, depth+1)
	case *types.Map:
		return exposedField(marked, u.Elem(), seen, depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue // encoding/json skips unexported fields
			}
			if tag := reflectTagName(u.Tag(i)); tag == "-" {
				continue
			}
			if marked[f] {
				return f.Name(), true
			}
			if name, ok := exposedField(marked, f.Type(), seen, depth+1); ok {
				return f.Name() + "." + name, true
			}
		}
	}
	return "", false
}

// reflectTagName extracts the json tag's name component.
func reflectTagName(tag string) string {
	name, _, _ := strings.Cut(reflect.StructTag(tag).Get("json"), ",")
	return name
}

func fnDisplay(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
