package analysis

import "testing"

func TestLockContractGolden(t *testing.T) {
	checkGoldenGroup(t, "ipa", []Rule{LockContract{}})
}

// TestLockContractQuietWithoutContracts makes sure the group rule does
// nothing on a tree with no holds or lockorder directives.
func TestLockContractQuietWithoutContracts(t *testing.T) {
	pkg := loadGolden(t, "callgraph")
	if diags := Run([]*Package{pkg}, []Rule{LockContract{}}); len(diags) != 0 {
		t.Errorf("contract-free package produced %v", diags)
	}
}
