package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLeak flags `go` statements that launch a goroutine which can
// never terminate: the spawned body's CFG contains code reachable from
// its entry from which the function exit is unreachable — an unbounded
// loop with no return, no break out, and no escaping goto. Such a
// goroutine survives every shutdown, pins its captured memory, and under
// -race only gets caught if a test happens to interleave with it; the
// journal's interval-sync loop and the daemon's server goroutine are
// exactly the shape this protects.
//
// The fix the rule pushes toward is a reachable termination signal: a
// ctx.Done()/done-channel select case that returns, a bounded or
// range-over-channel loop (closing the channel ends it), or a break.
// Named targets declared in the same package are resolved and their
// bodies analyzed; calls into other packages are skipped rather than
// guessed at, so the rule cannot false-positive on code it cannot see.
type GoroutineLeak struct{}

func (GoroutineLeak) Name() string { return "goroutine-leak" }

func (GoroutineLeak) Doc() string {
	return "a launched goroutine must be able to terminate: every loop " +
		"needs a reachable return/break (ctx or done-channel case, bounded " +
		"or range-over-channel loop)"
}

func (r GoroutineLeak) Inspect(p *Pass) {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, what := goTargetBody(p, decls, g)
			if body == nil {
				return true
			}
			cfg := lockCFG(p, body)
			reach := cfg.ReachableFromEntry()
			exits := cfg.ReachesExit()
			isTrapped := false
			trapped := token.NoPos
			for _, blk := range cfg.Blocks {
				if !reach[blk] || exits[blk] {
					continue
				}
				isTrapped = true
				// Prefer a node position for the message; a bare `for {}`
				// cycle has none, in which case the go statement stands in.
				if len(blk.Nodes) > 0 {
					if pos := blk.Nodes[0].Pos(); trapped == token.NoPos || pos < trapped {
						trapped = pos
					}
				}
			}
			if isTrapped {
				if trapped == token.NoPos {
					trapped = g.Pos()
				}
				p.Reportf(g.Pos(), "goroutine%s can never terminate: no path from line %d reaches a return; add a ctx/done-channel case that returns, bound the loop, or break out",
					what, p.Fset.Position(trapped).Line)
			}
			return true
		})
	}
}

// goTargetBody resolves the body the go statement runs: a function
// literal, or a function/method declared in this package. Anything else
// (imported functions, interface methods, function values) returns nil —
// the rule stays silent rather than guess.
func goTargetBody(p *Pass, decls map[types.Object]*ast.FuncDecl, g *ast.GoStmt) (*ast.BlockStmt, string) {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, ""
	case *ast.Ident:
		if fd := decls[p.Info.Uses[fun]]; fd != nil {
			return fd.Body, " " + fd.Name.Name
		}
	case *ast.SelectorExpr:
		if fd := decls[p.Info.Uses[fun.Sel]]; fd != nil {
			return fd.Body, " " + fd.Name.Name
		}
	}
	return nil, ""
}
