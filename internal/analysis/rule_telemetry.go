package analysis

import (
	"go/ast"
	"go/types"
)

// TelemetryLabel reports telemetry series registrations whose metric name
// or label arguments are not compile-time constants. The telemetry registry
// interns every (name, labels) series forever; a label derived from a
// request (a buyer id, a raw path, a float rendered to a string) turns the
// registry into an unbounded leak and the /metrics exposition into a
// cardinality bomb. Values that are provably bounded but not constant —
// an offering name from the configured menu, a route from a fixed table —
// carry a //lint:ignore stating the boundedness argument.
type TelemetryLabel struct {
	// TelemetryPath is the import path of the telemetry package whose
	// registration methods are checked.
	TelemetryPath string
}

func (TelemetryLabel) Name() string { return "telemetry-label-literal" }

func (TelemetryLabel) Doc() string {
	return "metric names and labels passed to telemetry registration must be " +
		"string literals or constants, so series cardinality is bounded at compile time"
}

// registrationMethods are the Registry methods that intern a series.
var registrationMethods = map[string]bool{
	"Counter":      true,
	"FloatCounter": true,
	"Gauge":        true,
	"GaugeFunc":    true,
	"Histogram":    true,
}

func (r TelemetryLabel) Inspect(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != r.TelemetryPath || !registrationMethods[fn.Name()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !sig.Variadic() {
				return true
			}
			if call.Ellipsis.IsValid() {
				p.Reportf(call.Ellipsis, "labels forwarded with ... to %s cannot be proven constant; spell them out or ignore with a boundedness argument", fn.Name())
				return true
			}
			// The variadic labels occupy the final parameter slot; the
			// metric name is always the first argument. Both are
			// cardinality-bearing, so both must be constant.
			firstLabel := sig.Params().Len() - 1
			for i, arg := range call.Args {
				if i != 0 && i < firstLabel {
					continue // e.g. Histogram's buckets, GaugeFunc's fn
				}
				if p.Info.Types[arg].Value != nil {
					continue
				}
				what := "label"
				if i == 0 {
					what = "metric name"
				}
				p.Reportf(arg.Pos(), "%s passed to %s is not a constant; non-constant series identities make metric cardinality unbounded", what, fn.Name())
			}
			return true
		})
	}
}
