// Package unlockpath is golden input for the unlock-path rule.
package unlockpath

import "sync"

// Box is a minimal locked container.
type Box struct {
	mu sync.Mutex
	n  int
}

// Deferred is the canonical safe shape.
func (b *Box) Deferred() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// Manual releases on every path, so staying manual is fine.
func (b *Box) Manual(early bool) int {
	b.mu.Lock()
	if early {
		b.mu.Unlock()
		return 0
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// EarlyReturn forgets the unlock on the error path.
func (b *Box) EarlyReturn(bad bool) int {
	b.mu.Lock()
	if bad {
		return -1 // want unlock-path
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// PanicPath leaves the lock held when it panics: a manual unlock does
// not run during a panic.
func (b *Box) PanicPath(bad bool) {
	b.mu.Lock()
	if bad {
		panic("bad") // want unlock-path
	}
	b.mu.Unlock()
}

// DeferredPanic is safe — the deferred unlock runs while panicking.
func (b *Box) DeferredPanic(bad bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if bad {
		panic("bad")
	}
}

// LoopHandoff acquires and releases per iteration; the implicit return
// at the end is clean.
func (b *Box) LoopHandoff(rounds int) {
	for i := 0; i < rounds; i++ {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	}
}

// SwitchLeak releases in only some cases.
func (b *Box) SwitchLeak(k int) int {
	b.mu.Lock()
	switch k {
	case 0:
		b.mu.Unlock()
		return 0
	case 1:
		return 1 // want unlock-path
	}
	b.mu.Unlock()
	return 2
}

// FallsOffEnd ends the function with the lock still held.
func (b *Box) FallsOffEnd() {
	b.mu.Lock()
	b.n++
} // want unlock-path
