// Package resource is the single-package golden for resource-lifecycle:
// an owning constructor, leaks on second-error returns and panics,
// and every blessed release shape — Close, defer, field store, return,
// goroutine handoff, and the closeOnErr closure pattern.
package resource

import "errors"

type conn struct{ fd int }

func (c *conn) Close() error { return nil }

// dial hands its connection to the caller.
//
//lint:owns the caller must close the connection
func dial(addr string) (*conn, error) {
	if addr == "" {
		return nil, errors.New("empty addr")
	}
	return &conn{fd: 3}, nil
}

// ping borrows the connection: it neither stores nor closes it.
func ping(c *conn) error {
	if c.fd == 0 {
		return errors.New("closed")
	}
	return nil
}

// leakOnError closes on success but leaks when the second call fails:
// the error excuse only covers the acquisition's own error.
func leakOnError(addr string) error {
	c, err := dial(addr)
	if err != nil {
		return err // c is nil here: excused
	}
	if err := ping(c); err != nil {
		return err // want resource-lifecycle
	}
	return c.Close()
}

// discard drops the owned result on the floor.
func discard(addr string) {
	dial(addr) // want resource-lifecycle
}

// discardBlank hides the drop behind a blank identifier.
func discardBlank(addr string) {
	_, _ = dial(addr) // want resource-lifecycle
}

// leakOnPanic releases on the happy path but panics past the Close.
func leakOnPanic(addr string) {
	c, err := dial(addr)
	if err != nil {
		panic(err) // the acquisition failed: excused
	}
	if c.fd < 0 {
		panic("bad fd") // want resource-lifecycle
	}
	c.Close()
}

// deferClose is the canonical clean shape; the defer survives both the
// early error return and any panic in ping.
func deferClose(addr string) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := ping(c); err != nil {
		return err
	}
	return nil
}

type pool struct{ c *conn }

// adopt transfers ownership into a field; the pool closes it later.
func (p *pool) adopt(addr string) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	p.c = c
	return nil
}

// serve hands the connection to a goroutine that closes it.
func serve(addr string) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	go func() {
		ping(c)
		c.Close()
	}()
	return nil
}

// mustDial returns what it acquires, so its computed summary owns the
// result — callers inherit the obligation without any annotation.
func mustDial(addr string) *conn {
	c, err := dial(addr)
	if err != nil {
		panic(err)
	}
	return c
}

// leakFromWrapper leaks a connection acquired through the unannotated
// wrapper; the finding lands on the fall-off-the-end exit.
func leakFromWrapper(addr string) {
	c := mustDial(addr)
	ping(c)
} // want resource-lifecycle

// openBoth is the closeOnErr pattern: the fail closure releases the
// first connection when the second acquisition fails.
func openBoth(a1, a2 string) (*conn, *conn, error) {
	c1, err := dial(a1)
	if err != nil {
		return nil, nil, err
	}
	fail := func(e error) (*conn, *conn, error) {
		c1.Close()
		return nil, nil, e
	}
	c2, err := dial(a2)
	if err != nil {
		return fail(err)
	}
	return c1, c2, nil
}

// nilGuard releases behind the classic `if c != nil` shape: on the nil
// arm there is nothing to close, so both arms are clean.
func nilGuard(addr string, want bool) error {
	var c *conn
	var err error
	if want {
		c, err = dial(addr)
		if err != nil {
			return err
		}
	}
	if c != nil {
		return c.Close()
	}
	return nil
}

// suppressed documents a process-lifetime connection.
func suppressed(addr string) {
	c := mustDial(addr)
	ping(c)
	//lint:ignore resource-lifecycle process-lifetime connection, the OS reclaims it at exit
}

//lint:owns
func badDirective(addr string) (*conn, error) { // want resource-lifecycle
	return dial(addr)
}

//lint:owns nothing closeable comes back from here
func badOwner() int { return 0 } // want resource-lifecycle
