//go:build never

// This file is excluded by its build constraint; if the loader ever picks
// it up anyway, the unsuppressed time.Now below makes the golden test fail
// with an unexpected no-wallclock finding (and the duplicate package-level
// name with buildtags.go produces a type error).
package buildtags

import "time"

var loaded = time.Now()
