// Package buildtags is golden input for the loader's build-constraint
// handling: excluded.go in this directory carries a //go:build never tag
// and must not be loaded, so its unsuppressed violation never fires.
package buildtags

import "time"

var loaded = time.Now() // want no-wallclock
