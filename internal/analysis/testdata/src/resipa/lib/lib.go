// Package lib exports an owning constructor and an adopting sink; the
// golden proves ownership summaries survive the package boundary.
package lib

import "errors"

// Res is a closeable resource.
type Res struct{ open bool }

func (r *Res) Close() error { r.open = false; return nil }

// Ping borrows the resource.
func (r *Res) Ping() error {
	if !r.open {
		return errors.New("closed")
	}
	return nil
}

// Open hands the resource to the caller.
//
//lint:owns the caller must close the resource
func Open(name string) (*Res, error) {
	if name == "" {
		return nil, errors.New("no name")
	}
	return &Res{open: true}, nil
}

// Keeper stores resources and closes them in bulk; Adopt takes
// ownership through its computed summary (it stores the parameter),
// with no annotation needed.
type Keeper struct{ held []*Res }

func (k *Keeper) Adopt(r *Res) {
	k.held = append(k.held, r)
}

// Close releases everything the keeper holds.
func (k *Keeper) Close() error {
	for _, r := range k.held {
		r.Close()
	}
	k.held = nil
	return nil
}
