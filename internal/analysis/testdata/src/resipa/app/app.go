// Package app acquires resources from a sibling package; the leak
// checks depend on lib's directives and summaries crossing the
// boundary.
package app

import "nimbus/internal/analysis/testdata/src/resipa/lib"

// Good hands the resource to a keeper whose Adopt summary takes it.
func Good(k *lib.Keeper, name string) error {
	r, err := lib.Open(name)
	if err != nil {
		return err
	}
	k.Adopt(r)
	return nil
}

// Discard drops the cross-package owned result.
func Discard(name string) error {
	_, err := lib.Open(name) // want resource-lifecycle
	return err
}

// Leak closes on the happy path but loses the resource when Ping
// fails: a borrowed call is not a release.
func Leak(name string) error {
	r, err := lib.Open(name)
	if err != nil {
		return err
	}
	if err := r.Ping(); err != nil {
		return err // want resource-lifecycle
	}
	return r.Close()
}
