// Package atomicmix is the golden for atomic-plain-mix: counters
// touched both through sync/atomic package functions and plainly.
package atomicmix

import "sync/atomic"

type stats struct {
	hits  int64
	total int64
	last  int64
}

// bump is the atomic side of the mix.
func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}

// badRead tears the counter: a plain load ignores the happens-before
// edge the atomic writers establish.
func (s *stats) badRead() int64 {
	return s.hits // want atomic-plain-mix
}

// badWrite resets it with a plain store.
func (s *stats) badWrite() {
	s.hits = 0 // want atomic-plain-mix
}

// goodRead stays on the atomic side.
func (s *stats) goodRead() int64 {
	return atomic.LoadInt64(&s.hits)
}

// total is only ever accessed plainly: consistent, so untracked.
func (s *stats) addTotal(n int64) {
	s.total += n
}

func (s *stats) readTotal() int64 { return s.total }

// badMixedArg smuggles a plain read into the atomic call itself; only
// the addressed first argument is sanctioned.
func (s *stats) badMixedArg() {
	atomic.StoreInt64(&s.last, s.last+1) // want atomic-plain-mix
}

// ops is a package-level counter with the same discipline.
var ops int64

func incOps() {
	atomic.AddInt64(&ops, 1)
}

func badOps() int64 {
	return ops // want atomic-plain-mix
}

// reset documents a single-goroutine phase where the plain store is
// benign.
func (s *stats) reset() {
	//lint:ignore atomic-plain-mix constructor path, no reader goroutine exists yet
	s.hits = 0
}
