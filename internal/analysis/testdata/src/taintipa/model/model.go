// Package model declares a raw-model carrier for the cross-package
// taint golden: the marked field lives here, the leak lives in the
// sibling web package.
package model

// Trained is a trained model.
//
//lint:source Trained.Weights
type Trained struct {
	Weights []float64
	Name    string
}

// RawWeights hands out the raw slice; its summary must carry the
// internal taint across the package boundary.
func (t *Trained) RawWeights() []float64 { return t.Weights }

// Scrub is the sanitizer the rule config names.
func Scrub(w []float64) []float64 {
	out := make([]float64, len(w))
	copy(out, w)
	return out
}
