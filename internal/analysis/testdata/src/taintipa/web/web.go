// Package web leaks a raw model declared in a sibling package; the
// golden proves summaries and marked-field identity survive the
// package boundary.
package web

import (
	"encoding/json"

	"nimbus/internal/analysis/testdata/src/taintipa/model"
)

// Leak releases raw weights fetched through a cross-package helper.
func Leak(t *model.Trained) ([]byte, error) {
	return json.Marshal(t.RawWeights()) // want noise-taint
}

// FieldLeak reads the marked field directly across the boundary.
func FieldLeak(t *model.Trained) ([]byte, error) {
	return json.Marshal(t.Weights) // want noise-taint
}

// Clean scrubs before releasing.
func Clean(t *model.Trained) ([]byte, error) {
	return json.Marshal(model.Scrub(t.RawWeights()))
}
