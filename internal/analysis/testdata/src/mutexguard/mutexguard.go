// Package mutexguard is golden input for the mutex-discipline rule.
package mutexguard

import "sync"

// Counter declares its guard contracts the way the production tree does.
type Counter struct {
	mu sync.RWMutex
	n  int // guarded by mu
	// name is also protected, via the doc-comment form.
	// guarded by mu
	name string
}

// Good holds the lock on every path.
func (c *Counter) Good() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Bare touches the field with no lock at all.
func (c *Counter) Bare() {
	c.n++ // want mutex-discipline
}

// OneBranch locks on only one path, so the access after the join is not
// protected on every path.
func (c *Counter) OneBranch(lock bool) {
	if lock {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n++ // want mutex-discipline
}

// ReadUnderRLock is enough for a read.
func (c *Counter) ReadUnderRLock() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// WriteUnderRLock is not enough for a write.
func (c *Counter) WriteUnderRLock() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.name = "x" // want mutex-discipline
}

// AfterRelease reads on the early path after the manual unlock.
func (c *Counter) AfterRelease(early bool) int {
	c.mu.Lock()
	if early {
		c.mu.Unlock()
		return c.n // want mutex-discipline
	}
	defer c.mu.Unlock()
	return c.n
}

// LoopLocked reacquires per iteration; every access is covered.
func (c *Counter) LoopLocked(rounds int) {
	for i := 0; i < rounds; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

// bump documents that its caller holds mu; its own access is clean and
// the obligation moves to the call sites.
//
//lint:holds mu
func (c *Counter) bump() { c.n++ }

// GoodCaller satisfies the helper's contract.
func (c *Counter) GoodCaller() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

// BadCaller calls the helper without the lock.
func (c *Counter) BadCaller() {
	c.bump() // want mutex-discipline
}

// Spawned is a goroutine body: it cannot inherit the enclosing critical
// section, so the unlocked access inside the literal is a race.
func (c *Counter) Spawned() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want mutex-discipline
	}()
}
