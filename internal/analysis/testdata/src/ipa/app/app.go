// Package app consumes lib's lock contracts from across the package
// boundary — the blind spot of the per-package rules.
package app

import "nimbus/internal/analysis/testdata/src/ipa/lib"

// Bad calls a //lint:holds helper without entering the critical
// section.
func Bad(s *lib.Store) int {
	return s.MustGet("k") // want lock-contract
}

// Good holds the contractual lock at the call site.
func Good(s *lib.Store) int {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	return s.MustGet("k")
}

// Branchy only locks on one path, so the must-lockset rejects it.
func Branchy(s *lib.Store, lock bool) int {
	if lock {
		s.Mu.Lock()
		defer s.Mu.Unlock()
	}
	return s.MustGet("k") // want lock-contract
}

// BadOrder acquires Bmu and then calls into lib, which takes Amu —
// against the declared Amu < Bmu order. The acquisition is invisible
// intraprocedurally and the directive lives in the other package.
func BadOrder(p *lib.Pair) {
	p.Bmu.Lock()
	p.GrabA() // want lock-contract
	p.ReleaseA()
	p.Bmu.Unlock()
}

// GoodOrder nests the locks the declared way round.
func GoodOrder(p *lib.Pair) {
	p.GrabA()
	p.Bmu.Lock()
	p.Bmu.Unlock()
	p.ReleaseA()
}

// grabViaHelper adds one more hop so the summary must be transitive.
func grabViaHelper(p *lib.Pair) { p.GrabA() }

// BadChain hits the same ordering violation two call edges deep.
func BadChain(p *lib.Pair) {
	p.Bmu.Lock()
	grabViaHelper(p) // want lock-contract
	p.ReleaseA()
	p.Bmu.Unlock()
}
