// Package lib declares the lock contracts for the interprocedural
// golden: a //lint:holds helper and a //lint:lockorder declaration,
// both of which the sibling app package must honor.
package lib

import "sync"

// Store guards a map with an exported mutex so cross-package callers
// can enter its critical section.
type Store struct {
	Mu   sync.Mutex
	data map[string]int
}

// MustGet reads without locking.
//
//lint:holds Mu
func (s *Store) MustGet(k string) int { return s.data[k] }

// Get is the same-package call site: mutex-discipline territory, so
// lock-contract must stay silent about it.
func (s *Store) Get(k string) int {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	return s.MustGet(k)
}

//lint:lockorder Amu < Bmu

// Pair carries two ordered locks.
type Pair struct {
	Amu sync.Mutex
	Bmu sync.Mutex
}

// GrabA acquires the lock the order says must come first.
func (p *Pair) GrabA() { p.Amu.Lock() }

// ReleaseA undoes GrabA.
func (p *Pair) ReleaseA() { p.Amu.Unlock() }
