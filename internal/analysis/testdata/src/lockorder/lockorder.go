// Package lockorder is golden input for the lock-order rule.
package lockorder

import "sync"

// The declared order mirrors the broker's write-ahead contract.
//
//lint:lockorder jmu < mu

// Ledger carries a journal lock that must always be taken first.
type Ledger struct {
	jmu sync.Mutex
	mu  sync.RWMutex
}

// Good acquires in the declared order.
func (l *Ledger) Good() {
	l.jmu.Lock()
	defer l.jmu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
}

// Bad acquires against it.
func (l *Ledger) Bad() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.jmu.Lock() // want lock-order
	l.jmu.Unlock()
}

// BranchBad holds mu on only one incoming path; acquiring jmu is still a
// deadlock risk on that path, so may-join flags it.
func (l *Ledger) BranchBad(b bool) {
	if b {
		l.mu.Lock()
		defer l.mu.Unlock()
	}
	l.jmu.Lock() // want lock-order
	l.jmu.Unlock()
}

// BranchGood may hold jmu when mu is taken — that is the declared order.
func (l *Ledger) BranchGood(b bool) {
	if b {
		l.jmu.Lock()
		defer l.jmu.Unlock()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
}

// Sequential releases the first lock before taking the second, so no
// ordering applies.
func (l *Ledger) Sequential() {
	l.mu.Lock()
	l.mu.Unlock()
	l.jmu.Lock()
	l.jmu.Unlock()
}

// ReadSide applies to read locks too: mu held as RLock still orders a
// later jmu acquisition against the declaration.
func (l *Ledger) ReadSide() {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.jmu.Lock() // want lock-order
	l.jmu.Unlock()
}

//lint:lockorder mu < // want lock-order
