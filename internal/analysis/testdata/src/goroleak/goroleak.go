// Package goroleak is golden input for the goroutine-leak rule.
package goroleak

var tick = make(chan struct{})

func work() {}

// Forever spins with no way out.
func Forever() {
	go func() { // want goroutine-leak
		for {
			work()
		}
	}()
}

// Straight runs to completion on its own.
func Straight(results chan<- int) {
	go func() { results <- 1 }()
}

// Bounded loops a fixed number of times.
func Bounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

// DoneChannel has a termination case that returns — the shape the rule
// pushes leak sites toward.
func DoneChannel(done <-chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			case <-tick:
				work()
			}
		}
	}()
}

// SelectNoExit ticks forever: it has a select, but no case ever leaves
// the loop.
func SelectNoExit() {
	go func() { // want goroutine-leak
		for {
			select {
			case <-tick:
				work()
			}
		}
	}()
}

// Ranged drains a channel and exits when it is closed.
func Ranged(jobs <-chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// BreakOut escapes its loop.
func BreakOut(stop func() bool) {
	go func() {
		for {
			if stop() {
				break
			}
			work()
		}
	}()
}

// spin is a named worker with no exit; the finding lands on the go
// statement that launches it.
func spin() {
	for {
		work()
	}
}

// Named launches the package-local worker, which the rule resolves.
func Named() {
	go spin() // want goroutine-leak
}
