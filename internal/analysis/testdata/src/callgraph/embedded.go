package callgraph

// Embedded-interface dispatch narrowing: Shut is declared on Shutter,
// but WideShutter embeds it. A call through a WideShutter value must
// only fan out to types that implement the *whole* embedding
// interface — resolving against Shut's defining interface would make
// every type with a Shut method a candidate.

type Shutter interface{ Shut() }

type WideShutter interface {
	Shutter
	Wide() string
}

// ShutOnly implements Shutter but not WideShutter.
type ShutOnly struct{}

func (ShutOnly) Shut() {}

// FullWide implements WideShutter.
type FullWide struct{}

func (FullWide) Shut()        {}
func (FullWide) Wide() string { return "" }

// ShutNarrow dispatches through the narrow interface: both
// implementations are candidates.
func ShutNarrow(s Shutter) { s.Shut() }

// ShutWide dispatches Shut through the embedding interface. The method
// object is Shutter's, but the call site's static interface is
// WideShutter, so ShutOnly must not be a candidate.
func ShutWide(w WideShutter) { w.Shut() }
