// Package callgraph exercises call-graph construction edge cases:
// static calls, interface dispatch with multiple implementations,
// deferred method calls, go-stmt closures, method values and mutual
// recursion. It carries no want-comments — callgraph_test.go asserts
// the edges and SCC order directly.
package callgraph

type Speaker interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{ last string }

func (c *Cat) Speak() string { return "meow" }

// Announce dispatches through the interface: the graph must fan out to
// both implementations.
func Announce(s Speaker) string { return s.Speak() }

type Counter struct{ n int }

func (c *Counter) Inc() { c.n++ }

// MethodValue returns c.Inc without calling it: a ref edge.
func MethodValue(c *Counter) func() { return c.Inc }

// DeferredMethod defers a method call: a defer edge.
func DeferredMethod(c *Counter) { defer c.Inc() }

// Spawn launches a closure on a goroutine: a go edge to the literal,
// and the literal gets its own static edge to helper.
func Spawn() {
	go func() { helper() }()
}

func helper() {}

// Even and Odd are mutually recursive: one SCC with both members.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// Self is directly recursive: a singleton SCC with a self-edge.
func Self(n int) int {
	if n <= 0 {
		return 0
	}
	return Self(n - 1)
}

// Chain → Even exercises bottom-up ordering: the {Even, Odd} component
// must be summarized before Chain's.
func Chain(n int) bool { return Even(n) }
