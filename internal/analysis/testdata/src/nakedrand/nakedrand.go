// Package nakedrand is golden input for the no-naked-rand rule. Trailing
// "want" comments declare the exact diagnostics the rule must produce.
package nakedrand

import (
	crand "crypto/rand" // ok: crypto/rand is not the seeded-stream concern
	"math/rand"         // want no-naked-rand
)

// Draw uses the process-global, unseeded stream — exactly what breaks
// replayable noise.
func Draw() int { return rand.Int() }

// Fill is fine: crypto/rand is for key material, not mechanism noise.
func Fill(b []byte) {
	if _, err := crand.Read(b); err != nil {
		panic(err)
	}
}
