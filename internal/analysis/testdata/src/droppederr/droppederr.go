// Package droppederr is golden input for the no-dropped-error rule.
package droppederr

import (
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Bad drops errors in every shape the rule knows.
func Bad() {
	fail()         // want no-dropped-error
	_ = fail()     // want no-dropped-error
	n, _ := pair() // want no-dropped-error
	_ = n
	defer fail() // want no-dropped-error
	go fail()    // want no-dropped-error
}

// Good handles, propagates, or calls into the allowlist.
func Good() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "x")      // ok: fmt is allowlisted
	_, _ = b.WriteString("y") // ok: strings.Builder never fails
	if err := fail(); err != nil {
		return "", err
	}
	n, err := pair()
	_ = n // ok: int, not error
	return b.String(), err
}
