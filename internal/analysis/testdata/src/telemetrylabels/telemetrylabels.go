// Package telemetrylabels is golden input for the telemetry-label-literal
// rule; it registers series against the real internal/telemetry API.
package telemetrylabels

import "nimbus/internal/telemetry"

const route = "/buy"

// Register mixes constant and request-derived series identities.
func Register(reg *telemetry.Registry, user string, labels []string) {
	reg.Counter("requests_total", "route", route)                 // ok: all constant
	reg.Counter("requests_total", "user", user)                   // want telemetry-label-literal
	reg.Histogram("latency_seconds", nil, "route", "GET "+route)  // ok: constant concatenation
	reg.Gauge("queue_depth", labels...)                           // want telemetry-label-literal
	reg.FloatCounter("revenue_total", "offering", offering())     // want telemetry-label-literal
	reg.GaugeFunc("mem_bytes", func() float64 { return 0 }, "area", "heap") // ok
}

// Dynamic builds the series name at runtime — the same cardinality bomb
// from the other direction.
func Dynamic(reg *telemetry.Registry, shard int) {
	name := seriesName(shard)
	reg.Counter(name) // want telemetry-label-literal
}

func seriesName(int) string { return "x" }

func offering() string { return "CASP/linreg" }
