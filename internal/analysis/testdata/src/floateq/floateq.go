// Package floateq is golden input for the no-float-eq rule.
package floateq

// Size is a named float type; the rule sees through it.
type Size float64

const (
	a = 1.5
	b = 2.5
)

// Folded is constant at compile time, so it is exempt.
var Folded = a == b

// Eq compares raw float64s both ways.
func Eq(x, y float64) bool {
	if x == y { // want no-float-eq
		return true
	}
	return x != y // want no-float-eq
}

// Zero compares a float against an untyped constant; the variable side
// still makes it a runtime float comparison.
func Zero(x float64) bool { return x == 0 } // want no-float-eq

// Named compares values of a defined float type.
func Named(x, y Size) bool { return x == y } // want no-float-eq

// Narrow compares float32s.
func Narrow(x, y float32) bool { return x != y } // want no-float-eq

// Ints is exempt: integer equality is exact.
func Ints(x, y int) bool { return x == y }

// Ordered is exempt: ordered comparisons are how grid code is supposed to
// resolve exact hits.
func Ordered(x, y float64) bool { return x >= y }
