// Package wallclock is golden input for the no-wallclock rule.
package wallclock

import (
	"time"

	tm "time"
)

// Clock is the injection pattern the rule pushes callers toward.
type Clock func() time.Time

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now() // want no-wallclock
}

// Aliased reads it through a renamed import.
func Aliased() time.Time {
	return tm.Now() // want no-wallclock
}

// now binds the wall clock into a package variable; the reference itself is
// the finding (this is where an injection point would carry its ignore).
var now = time.Now // want no-wallclock

// Use goes through an injected clock: no finding.
func Use(c Clock) time.Duration {
	return c().Sub(c())
}

// Since is fine: time.Since is not time.Now (the rule is deliberately
// narrow; Since-based timings of injected stamps stay legal).
func Since(t time.Time) time.Duration {
	return now().Sub(t)
}
