// Package waitgroup is the golden for waitgroup-balance: unbalanced
// Adds, Wait-under-lock deadlocks, Add racing Wait from inside the
// launched goroutine, and every crediting shape that must stay quiet.
package waitgroup

import "sync"

func work() {}

// addNoDone launches a worker that never calls Done; Wait blocks
// forever.
func addNoDone() {
	var wg sync.WaitGroup
	wg.Add(1) // want waitgroup-balance
	go work()
	wg.Wait()
}

// addDoneLiteral is the canonical fan-out: the literal carries the
// deferred Done.
func addDoneLiteral(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// inlineDone is a same-goroutine protocol.
func inlineDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Done()
	wg.Wait()
}

// complete balances a group handed over by its caller.
func complete(wg *sync.WaitGroup) {
	wg.Done()
}

// handoff passes the group to a helper; the Done is the helper's
// contract.
func handoff() {
	var wg sync.WaitGroup
	wg.Add(1)
	go complete(&wg)
	wg.Wait()
}

type svc struct {
	mu sync.Mutex
	wg sync.WaitGroup
	n  int
}

// start credits its Add through the launched method's deferred Done.
func (s *svc) start() {
	s.wg.Add(1)
	go s.run()
}

func (s *svc) run() {
	defer s.wg.Done()
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// stop waits while holding the mutex the worker needs before it can
// call Done: a deadlock when run is still queued on mu.
func (s *svc) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want waitgroup-balance
}

// stopClean releases the lock before waiting.
func (s *svc) stopClean() {
	s.mu.Lock()
	s.n = 0
	s.mu.Unlock()
	s.wg.Wait()
}

// addInside increments the counter from inside the goroutine it
// accounts for: the enclosing Wait can return before the Add runs.
func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want waitgroup-balance
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// suppressed documents an Add whose Done lives across a package
// boundary the rule cannot see.
func suppressed(wg *sync.WaitGroup) {
	//lint:ignore waitgroup-balance the collector calls Done when the batch drains
	wg.Add(1)
}
