// Package snapshot is golden input for the snapshot-immutability rule:
// clone-and-swap discipline around an atomic.Pointer-published config.
package snapshot

import "sync/atomic"

type conf struct {
	limit int
	tags  map[string]string
}

type box struct {
	cur atomic.Pointer[conf]
}

// bad writes a field of the loaded snapshot directly.
func (b *box) bad() {
	c := b.cur.Load()
	c.limit = 3 // want snapshot-immutability
}

// badMap writes into a map reached from the loaded snapshot.
func (b *box) badMap() {
	b.cur.Load().tags["a"] = "b" // want snapshot-immutability
}

// badDelete deletes from a published map.
func (b *box) badDelete() {
	delete(b.cur.Load().tags, "a") // want snapshot-immutability
}

// badInc increments through the published pointer.
func (b *box) badInc() {
	b.cur.Load().limit++ // want snapshot-immutability
}

// good is the sanctioned pattern: clone, mutate the clone, Store.
func (b *box) good() {
	cur := b.cur.Load()
	next := &conf{limit: cur.limit, tags: make(map[string]string, len(cur.tags))}
	for k, v := range cur.tags {
		next.tags[k] = v
	}
	next.limit++
	b.cur.Store(next)
}

// bump mutates its parameter; callers with published arguments are the
// ones at fault.
func bump(c *conf) {
	c.limit++
}

// badCall hands the loaded snapshot to a mutating callee.
func (b *box) badCall() {
	bump(b.cur.Load()) // want snapshot-immutability
}

// goodCall mutates a clone through the same callee.
func (b *box) goodCall() {
	next := b.clone()
	bump(next)
	b.cur.Store(next)
}

// clone builds a fresh deep copy: the value copy and the fresh map keep
// every write below from touching the published snapshot.
func (b *box) clone() *conf {
	cur := b.cur.Load()
	c := *cur
	c.tags = make(map[string]string, len(cur.tags))
	for k, v := range cur.tags {
		c.tags[k] = v
	}
	return &c
}

// snap returns the loaded pointer, so its callers hold published memory —
// the summary carries provenance across the call.
func (b *box) snap() *conf {
	return b.cur.Load()
}

// badVia mutates through a helper's published return value.
func (b *box) badVia() {
	b.snap().tags["x"] = "y" // want snapshot-immutability
}

// badTwoDeep mutates through two frames of helpers.
func (b *box) badTwoDeep() {
	poke(b.snap()) // want snapshot-immutability
}

func poke(c *conf) {
	bump(c)
}

// reads never fire: loading and reading the snapshot is the whole point.
func (b *box) reads() int {
	c := b.cur.Load()
	n := c.limit
	for range c.tags {
		n++
	}
	return n
}

// suppressed documents a justified exception.
func (b *box) suppressed() {
	c := b.cur.Load()
	//lint:ignore snapshot-immutability single-threaded bootstrap; the box is not shared yet
	c.limit = 1
}
