package snapshot

// frozen is shared by reference between goroutines once constructed; the
// annotation makes every non-fresh value of the type published.
//
//lint:immutable shared read-only after construction; rebuild instead of editing
type frozen struct {
	n     int
	items []int
}

type holder struct {
	f *frozen
}

// badField writes a frozen value read out of a struct field.
func (h *holder) badField() {
	h.f.n = 1 // want snapshot-immutability
}

// badSlice writes through a frozen value's slice.
func (h *holder) badSlice() {
	h.f.items[0] = 2 // want snapshot-immutability
}

// goodBuild constructs a fresh frozen and mutates it before sharing.
func (h *holder) goodBuild() {
	f := &frozen{items: make([]int, 4)}
	f.n = 7
	f.items[0] = 1
	h.f = f
}

// goodCopy mutates a value copy, never the shared original.
func (h *holder) goodCopy() int {
	c := *h.f
	c.n++
	return c.n
}

// setN mutates its parameter; direct parameters stay analyzable so the
// call-site check below can blame the caller.
func setN(f *frozen, n int) {
	f.n = n
}

// badSet passes shared frozen memory to a mutating callee.
func (h *holder) badSet() {
	setN(h.f, 3) // want snapshot-immutability
}

// goodSet passes a fresh frozen to the same callee.
func goodSet() *frozen {
	f := &frozen{}
	setN(f, 3)
	return f
}

//lint:immutable
type bare struct{ n int } // want snapshot-immutability
