// Package hotpathbad holds a bare //lint:allocok, which must itself be
// a finding and must not excuse the allocation under it.
package hotpathbad

//lint:hotpath spin loop
func spin() []int {
	//lint:allocok
	return make([]int, 8)
}
