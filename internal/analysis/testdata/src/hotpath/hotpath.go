// Package hotpath exercises the hot-path allocation budget rule:
// rooted reachability, every allocation kind, the go-statement escape,
// and both scopes of //lint:allocok.
package hotpath

import "fmt"

type order struct {
	id  int
	tag string
}

var (
	sink    any
	results []*order
	shared  *order
)

// process is the serving loop's critical section.
//
//lint:hotpath per-request purchase path, measured by the perf harness
func process(id int) {
	o := &order{id: id}          // want hotpath-alloc
	results = append(results, o) // want hotpath-alloc
	helper(id)
	fine(id)
	reuse()
	_ = clone(o)
	go coldWork()
}

// helper is hot by reachability, not by annotation.
func helper(id int) {
	s := fmt.Sprintf("order-%d", id) // want hotpath-alloc
	_ = s
	buf := make([]byte, 64) // want hotpath-alloc
	_ = buf
	ids := []int{1, 2, 3} // want hotpath-alloc
	_ = ids
	f := func() int { return id } // want hotpath-alloc
	_ = f()
}

// fine justifies its allocation, then boxes a value without excuse.
func fine(id int) {
	//lint:allocok capacity 4 covers every real batch on this path
	tmp := make([]int, 0, 4)
	_ = tmp
	box(id) // want hotpath-alloc
}

func box(v any) { sink = v }

// reuse only touches existing memory: no findings.
func reuse() {
	p := shared
	_ = p
	v := order{id: 1}
	_ = v
	take(v)
}

func take(order) {}

// clone exists to allocate; callers budget for it.
//
//lint:allocok the copy is the point; callers amortize it per batch
func clone(o *order) *order {
	return &order{id: o.id, tag: o.tag}
}

// coldWork runs on its own goroutine, off the latency path, so its
// allocation is out of budget scope.
func coldWork() {
	m := map[string]int{"a": 1}
	_ = m
}
