// Package suppress is golden input for //lint:ignore handling: directives
// in both supported positions silence findings, an unrelated directive does
// not, and an unsuppressed site still fires.
package suppress

import "time"

//lint:ignore no-wallclock boot stamp is display-only, never replayed
var boot = time.Now()

var traced = time.Now() //lint:ignore no-wallclock trailing form, also display-only

//lint:ignore no-float-eq directive names a different rule, so this still fires
var leaked = time.Now() // want no-wallclock

var naked = time.Now() // want no-wallclock

var x, y float64

//lint:ignore no-wallclock,no-float-eq one comma-separated directive silences both rules on the next line
var both = time.Now().IsZero() || x == y

//lint:ignore no-wallclock,no-dropped-error names two rules, neither of them float-eq
var partial = time.Now().IsZero() || x == y // want no-float-eq
