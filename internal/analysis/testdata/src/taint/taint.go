// Package taint exercises the noise-taint rule: marked source fields,
// source functions, the sanitizer, declassification, interprocedural
// flows through results and parameters, stores into unmarked fields,
// and type-based exposure at sinks.
package taint

import "encoding/json"

// Model carries a raw trained model.
//
//lint:source Model.Raw
type Model struct {
	Raw    []float64
	Public string
}

// Mech is the test sanitizer: the rule config names its Perturb method.
type Mech struct{}

func (Mech) Perturb(w []float64) []float64 {
	out := make([]float64, len(w))
	copy(out, w)
	return out
}

// Fit is a configured source function: its slice result is born raw.
func Fit(rows int) []float64 { return make([]float64, rows) }

// Norm is a safe scalar aggregate of a raw model.
//
//lint:declassify the norm reveals magnitude, not coordinates
func Norm(w []float64) float64 {
	var s float64
	for _, v := range w {
		s += v * v
	}
	return s
}

// DirectSink marshals the raw slice straight out.
func DirectSink(m *Model) ([]byte, error) {
	return json.Marshal(m.Raw) // want noise-taint
}

// SanitizedSink perturbs first: clean.
func SanitizedSink(m *Model, k Mech) ([]byte, error) {
	return json.Marshal(k.Perturb(m.Raw))
}

// rawOf moves the raw slice through a helper's result.
func rawOf(m *Model) []float64 {
	return m.Raw
}

// IndirectSink leaks through the helper's summary (resultTainted).
func IndirectSink(m *Model) ([]byte, error) {
	return json.Marshal(rawOf(m)) // want noise-taint
}

// publish releases whatever it is handed; leaking is the caller's
// fault, so the finding lands at the call site, not here.
func publish(w []float64) {
	b, _ := json.Marshal(w)
	_ = b
}

// CallerLeak passes raw data to a releasing callee.
func CallerLeak(m *Model) {
	publish(m.Raw) // want noise-taint
}

// SanitizedCall perturbs before handing off: clean.
func SanitizedCall(m *Model, k Mech) {
	publish(k.Perturb(m.Raw))
}

type record struct {
	Weights []float64
}

// StoreUnmarked hides raw data in a field the rule cannot see through.
func StoreUnmarked(m *Model) record {
	return record{Weights: m.Raw} // want noise-taint
}

// DeclassifiedSink releases only the declassified aggregate: clean.
func DeclassifiedSink(m *Model) ([]byte, error) {
	return json.Marshal(Norm(m.Raw))
}

// ExposureSink marshals the whole struct: the marked field goes over
// the wire even though no tracked flow exists.
func ExposureSink(m *Model) ([]byte, error) {
	return json.Marshal(m) // want noise-taint
}

// SourceFuncSink releases a training output without noise.
func SourceFuncSink() ([]byte, error) {
	w := Fit(4)
	return json.Marshal(w) // want noise-taint
}

// LoopFlow propagates taint through range and append.
func LoopFlow(m *Model) ([]byte, error) {
	var out []float64
	for _, v := range m.Raw {
		out = append(out, v)
	}
	return json.Marshal(out) // want noise-taint
}

// Suppressed shows the escape hatch still works for group findings.
func Suppressed(m *Model) ([]byte, error) {
	//lint:ignore noise-taint golden: exercising suppression of a group finding
	return json.Marshal(m.Raw)
}
