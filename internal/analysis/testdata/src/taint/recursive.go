package taint

import "encoding/json"

// pubEven and pubOdd leak their parameter through mutual recursion:
// each one's leak clause embeds the other's, so a summary equality
// that compared rendered clause text would grow a layer per fixpoint
// iteration and never converge. The fixpoint compares leak presence
// instead; this golden pins both the termination and the call-site
// finding.
func pubEven(w []float64, depth int) {
	if depth <= 0 {
		b, _ := json.Marshal(w)
		_ = b
		return
	}
	pubOdd(w, depth-1)
}

func pubOdd(w []float64, depth int) {
	pubEven(w, depth-1)
}

// RecursiveLeak hands raw data into the leaking cycle; the finding
// lands here, where the taint enters.
func RecursiveLeak(m *Model) {
	pubEven(m.Raw, 3) // want noise-taint
}
