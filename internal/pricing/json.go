package pricing

import (
	"encoding/json"
	"fmt"
)

// JSON serialization for pricing functions: the broker persists and audits
// price curves (market.OfferingSnapshot), and HTTP clients reconstruct
// local copies for offline what-if analysis.

// functionJSON is the wire form: just the knots.
type functionJSON struct {
	Points []Point `json:"points"`
}

// MarshalJSON implements json.Marshaler.
func (f *Function) MarshalJSON() ([]byte, error) {
	return json.Marshal(functionJSON{Points: f.Points()})
}

// UnmarshalJSON implements json.Unmarshaler; the decoded knots go through
// the same structural validation as NewFunction.
func (f *Function) UnmarshalJSON(data []byte) error {
	var wire functionJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return fmt.Errorf("pricing: decoding function: %w", err)
	}
	decoded, err := NewFunction(wire.Points)
	if err != nil {
		return err
	}
	f.pts = decoded.pts
	return nil
}
