package pricing

import (
	"encoding/json"
	"testing"
)

func TestFunctionJSONRoundTrip(t *testing.T) {
	f := mustFunc(t, []Point{{X: 1, Price: 10}, {X: 2, Price: 15}, {X: 4, Price: 20}})
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back Function
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 1.7, 3, 4, 9} {
		if back.Price(x) != f.Price(x) {
			t.Fatalf("price(%v) changed: %v vs %v", x, back.Price(x), f.Price(x))
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionUnmarshalRejectsIllFormed(t *testing.T) {
	cases := []string{
		`{nope`,
		`{"points": []}`,
		`{"points": [{"x": -1, "price": 5}]}`,
		`{"points": [{"x": 1, "price": -5}]}`,
		`{"points": [{"x": 1, "price": 1}, {"x": 1, "price": 2}]}`,
	}
	for i, raw := range cases {
		var f Function
		if err := json.Unmarshal([]byte(raw), &f); err == nil {
			t.Errorf("case %d accepted: %s", i, raw)
		}
	}
}
