package pricing

import (
	"errors"
	"math"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/ml"
	"nimbus/internal/noise"
)

func regFixture(t *testing.T) (*dataset.Pair, []float64) {
	t.Helper()
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 400, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := dataset.NewPair(d, newSrc())
	if err != nil {
		t.Fatal(err)
	}
	w, err := ml.LinearRegression{Ridge: 1e-3}.Fit(pair.Train)
	if err != nil {
		t.Fatal(err)
	}
	return pair, w
}

func clsFixture(t *testing.T) (*dataset.Pair, []float64) {
	t.Helper()
	d := dataset.Simulated2(dataset.GenConfig{Rows: 800, Seed: 14})
	pair, err := dataset.NewPair(d, newSrc())
	if err != nil {
		t.Fatal(err)
	}
	w, err := ml.LogisticRegression{Ridge: 1e-4}.Fit(pair.Train)
	if err != nil {
		t.Fatal(err)
	}
	return pair, w
}

func TestSquaredToOptimalCurveExact(t *testing.T) {
	c, err := SquaredToOptimalCurve([]float64{1, 2, 4, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, 2, 4, 10} {
		if got := c.Err(x); math.Abs(got-1/x) > 1e-12 {
			t.Fatalf("Err(%v) = %v, want %v", x, got, 1/x)
		}
	}
}

func TestErrInterpolationAndClamping(t *testing.T) {
	c, err := SquaredToOptimalCurve([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Err(0.5) != 1 { // clamp below
		t.Fatalf("Err(0.5) = %v", c.Err(0.5))
	}
	if c.Err(5) != 0.5 { // clamp above
		t.Fatalf("Err(5) = %v", c.Err(5))
	}
	if got := c.Err(1.5); math.Abs(got-0.75) > 1e-12 { // linear midpoint of 1, 0.5
		t.Fatalf("Err(1.5) = %v", got)
	}
}

func TestXForErrorInverse(t *testing.T) {
	c, err := SquaredToOptimalCurve(DefaultGrid(50))
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0.9, 0.5, 0.1, 0.02} {
		x, err := c.XForError(target)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if got := c.Err(x); got > target+1e-9 {
			t.Fatalf("XForError(%v) = %v gives error %v > budget", target, x, got)
		}
		// Cheapest: slightly lower quality must exceed the budget (when not
		// clamped to grid minimum).
		if x > c.Xs[0]+1e-9 && c.Err(x*0.95) <= target-1e-9 {
			t.Fatalf("XForError(%v) = %v is not minimal", target, x)
		}
	}
	// Loose budgets clamp to the cheapest version.
	if x, err := c.XForError(100); err != nil || x != c.Xs[0] {
		t.Fatalf("loose budget: x=%v err=%v", x, err)
	}
	// Unattainable budget errors out.
	if _, err := c.XForError(1e-9); !errors.Is(err, ErrUnattainable) {
		t.Fatalf("want ErrUnattainable, got %v", err)
	}
}

func TestMonteCarloTransformMonotone(t *testing.T) {
	pair, w := regFixture(t)
	curve, err := MonteCarloTransform(TransformConfig{
		Optimal: w,
		Loss:    ml.SquaredLoss{},
		Data:    pair.Test,
		Xs:      DefaultGrid(20),
		Samples: 200,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve.Errs); i++ {
		if curve.Errs[i] > curve.Errs[i-1]+1e-12 {
			t.Fatalf("curve not monotone at %d: %v", i, curve.Errs)
		}
	}
	// Error must strictly drop from lowest to highest quality.
	if curve.Errs[len(curve.Errs)-1] >= curve.Errs[0] {
		t.Fatalf("no error improvement across grid: %v ... %v", curve.Errs[0], curve.Errs[len(curve.Errs)-1])
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	pair, w := regFixture(t)
	loss := ml.SquaredLoss{}
	xs := []float64{1, 5, 20, 100}
	mc, err := MonteCarloTransform(TransformConfig{
		Optimal: w, Loss: loss, Data: pair.Test, Xs: xs, Samples: 3000, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	an, err := AnalyticSquaredTransform(w, loss, pair.Test, xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		rel := math.Abs(mc.Errs[i]-an.Errs[i]) / an.Errs[i]
		if rel > 0.06 {
			t.Fatalf("x=%v: MC %v vs analytic %v (rel %v)", xs[i], mc.Errs[i], an.Errs[i], rel)
		}
	}
}

func TestZeroOneTransformDecreases(t *testing.T) {
	// Figure 6 bottom row: even the non-convex 0/1 error decreases in 1/NCP.
	pair, w := clsFixture(t)
	curve, err := MonteCarloTransform(TransformConfig{
		Optimal: w,
		Loss:    ml.ZeroOneLoss{},
		Data:    pair.Test,
		Xs:      []float64{1, 10, 100},
		Samples: 400,
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(curve.Errs[2] < curve.Errs[0]) {
		t.Fatalf("0/1 error not decreasing: %v", curve.Errs)
	}
}

func TestLaplaceAndUniformMechanismsTransform(t *testing.T) {
	pair, w := regFixture(t)
	for _, mech := range []noise.Mechanism{noise.Laplace{}, noise.Uniform{}} {
		curve, err := MonteCarloTransform(TransformConfig{
			Optimal: w, Loss: ml.SquaredLoss{}, Data: pair.Test,
			Mechanism: mech, Xs: []float64{1, 100}, Samples: 500, Seed: 10,
		})
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		if curve.Errs[1] >= curve.Errs[0] {
			t.Fatalf("%s: not decreasing: %v", mech.Name(), curve.Errs)
		}
	}
}

func TestTransformConfigValidation(t *testing.T) {
	pair, w := regFixture(t)
	bad := []TransformConfig{
		{Loss: ml.SquaredLoss{}, Data: pair.Test},                                   // nil optimal
		{Optimal: w, Data: pair.Test},                                               // nil loss
		{Optimal: w, Loss: ml.SquaredLoss{}},                                        // nil data
		{Optimal: w, Loss: ml.SquaredLoss{}, Data: pair.Test, Xs: []float64{-1, 1}}, // bad grid
	}
	for i, cfg := range bad {
		if _, err := MonteCarloTransform(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := SquaredToOptimalCurve([]float64{0, 1}); err == nil {
		t.Error("non-positive grid accepted")
	}
	if _, err := AnalyticSquaredTransform(w, ml.SquaredLoss{}, pair.Test, []float64{-1, 2}); err == nil {
		t.Error("analytic transform accepted bad grid")
	}
}

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid(100)
	if len(g) != 100 || g[0] != 1 || g[99] != 100 {
		t.Fatalf("grid endpoints: %v ... %v (len %d)", g[0], g[99], len(g))
	}
	if len(DefaultGrid(1)) != 2 {
		t.Fatal("degenerate grid size not fixed up")
	}
}

// TestErrExactGridHitResolvesByIndex pins the regression for the
// no-float-eq fix in Err: an x that lands exactly on a grid knot must
// return that knot's stored error bit-for-bit, resolved through the search
// index rather than a float == — which matters because interpolating the
// bracketing segment at t=1 (e0 + (e1-e0)) does not round back to e1 for
// these values.
func TestErrExactGridHitResolvesByIndex(t *testing.T) {
	xs := []float64{1, 2, 3}
	errs := []float64{0.9, 0.7, 0.1}
	if e0, e1 := errs[1], errs[2]; e0+(e1-e0) == e1 {
		t.Fatal("fixture is too tame: endpoint interpolation is exact, pick values that round")
	}
	c, err := ExactCurve("fixture", xs, errs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if got := c.Err(x); got != errs[i] {
			t.Errorf("Err(%v) = %v, want the knot value %v exactly", x, got, errs[i])
		}
	}
	// Between knots it still interpolates.
	if got, want := c.Err(1.5), 0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("Err(1.5) = %v, want %v", got, want)
	}
}

// TestErrorCurveRejectsDuplicateGrid pins the ordered-comparison rewrite of
// the duplicate-grid check: equal neighbours in a sorted grid must still be
// rejected.
func TestErrorCurveRejectsDuplicateGrid(t *testing.T) {
	if _, err := ExactCurve("dup", []float64{1, 2, 2, 3}, []float64{4, 3, 2, 1}); err == nil {
		t.Fatal("duplicate grid point was accepted")
	}
}
