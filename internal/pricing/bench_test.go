package pricing

import (
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/ml"
	"nimbus/internal/rng"
)

func benchFixture(b *testing.B) (*dataset.Pair, []float64) {
	b.Helper()
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 400, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	pair, err := dataset.NewPair(d, rng.New(99))
	if err != nil {
		b.Fatal(err)
	}
	w, err := ml.LinearRegression{Ridge: 1e-3}.Fit(pair.Train)
	if err != nil {
		b.Fatal(err)
	}
	return pair, w
}

func BenchmarkFunctionPrice(b *testing.B) {
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{X: float64(i + 1), Price: 10 + float64(i)}
	}
	f, err := NewFunction(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Price(float64(i%120) + 0.5)
	}
}

func BenchmarkMonteCarloTransform(b *testing.B) {
	pair, w := benchFixture(b)
	cfg := TransformConfig{
		Optimal: w, Loss: ml.SquaredLoss{}, Data: pair.Test,
		Xs: DefaultGrid(10), Samples: 100, Seed: 3,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarloTransform(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyticSquaredTransform(b *testing.B) {
	pair, w := benchFixture(b)
	grid := DefaultGrid(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyticSquaredTransform(w, ml.SquaredLoss{}, pair.Test, grid); err != nil {
			b.Fatal(err)
		}
	}
}
