package pricing

import (
	"math"
	"testing"
	"testing/quick"

	"nimbus/internal/rng"
)

// quickFunction deterministically derives a well-behaved pricing function
// from a seed, for property tests.
func quickFunction(seed int64) *Function {
	src := rng.New(seed)
	n := 2 + src.Intn(6)
	pts := make([]Point, n)
	x, price := 0.0, 0.0
	ratio := 5 + src.Float64()*10
	for i := 0; i < n; i++ {
		x += 0.5 + src.Float64()*2
		maxP := ratio * x
		price = price + src.Float64()*(maxP-price)
		pts[i] = Point{X: x, Price: price}
		ratio = price / x
	}
	f, err := NewFunction(pts)
	if err != nil {
		panic(err)
	}
	return f
}

// Property: a validated function's extension is monotone in quality and
// anti-monotone in the NCP, everywhere.
func TestQuickPriceMonotone(t *testing.T) {
	f := func(seed int64, rawA, rawB float64) bool {
		fn := quickFunction(seed)
		if fn.Validate() != nil {
			return false
		}
		a := math.Abs(math.Mod(rawA, 50)) + 0.01
		b := math.Abs(math.Mod(rawB, 50)) + 0.01
		if a > b {
			a, b = b, a
		}
		if fn.Price(a) > fn.Price(b)+1e-9 {
			return false
		}
		// PriceAtNCP(δ) = Price(1/δ): smaller δ (better model) costs more.
		return fn.PriceAtNCP(b) <= fn.PriceAtNCP(a)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: subadditivity of the extension holds for arbitrary pairs, not
// just grid pairs.
func TestQuickPriceSubadditive(t *testing.T) {
	f := func(seed int64, rawX, rawY float64) bool {
		fn := quickFunction(seed)
		x := math.Abs(math.Mod(rawX, 40)) + 0.01
		y := math.Abs(math.Mod(rawY, 40)) + 0.01
		return fn.Price(x+y) <= fn.Price(x)+fn.Price(y)+1e-9*(1+fn.Price(x+y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the error curve's inverse really is an inverse on its range.
func TestQuickErrorInverse(t *testing.T) {
	curve, err := SquaredToOptimalCurve(DefaultGrid(64))
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		// Targets inside the achievable band.
		lo, hi := curve.Errs[len(curve.Errs)-1], curve.Errs[0]
		target := lo + math.Abs(math.Mod(raw, 1))*(hi-lo)
		x, err := curve.XForError(target)
		if err != nil {
			return false
		}
		return curve.Err(x) <= target+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
