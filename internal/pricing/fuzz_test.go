package pricing

import (
	"math"
	"testing"
)

// FuzzFunctionKnots feeds arbitrary knot data into NewFunction: it must
// either reject the knots or produce a total, finite, panic-free price
// function; validated functions must additionally be subadditive at the
// fuzzed probe pair.
func FuzzFunctionKnots(f *testing.F) {
	f.Add(1.0, 10.0, 2.0, 15.0, 0.5, 1.5)
	f.Add(1.0, 10.0, 2.0, 25.0, 1.0, 1.0)
	f.Add(0.0, -1.0, -2.0, 3.0, 0.1, 0.2)
	f.Fuzz(func(t *testing.T, x1, p1, x2, p2, a, b float64) {
		fn, err := NewFunction([]Point{{X: x1, Price: p1}, {X: x2, Price: p2}})
		if err != nil {
			return // rejected: fine
		}
		for _, probe := range []float64{a, b, a + b, x1, x2, 0, -1} {
			v := fn.Price(probe)
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("Price(%v) = %v", probe, v)
			}
		}
		if fn.Validate() != nil {
			return
		}
		pa := math.Abs(math.Mod(a, 1e6))
		pb := math.Abs(math.Mod(b, 1e6))
		if pa == 0 || pb == 0 {
			return
		}
		if fn.Price(pa+pb) > fn.Price(pa)+fn.Price(pb)+1e-9*(1+fn.Price(pa+pb)) {
			t.Fatalf("validated function superadditive at (%v, %v)", pa, pb)
		}
	})
}

// FuzzErrorCurveInverse checks the error-inverse against arbitrary curves
// and targets: no panics, and any returned quality meets the budget.
func FuzzErrorCurveInverse(f *testing.F) {
	f.Add(1.0, 0.9, 10.0, 0.1, 0.5)
	f.Add(1.0, 1.0, 2.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, x1, e1, x2, e2, target float64) {
		curve, err := ExactCurve("fuzz", []float64{x1, x2}, []float64{e1, e2})
		if err != nil {
			return
		}
		x, err := curve.XForError(target)
		if err != nil {
			return
		}
		if got := curve.Err(x); got > target+1e-9 && !math.IsNaN(target) {
			t.Fatalf("XForError(%v) = %v gives %v", target, x, got)
		}
	})
}
