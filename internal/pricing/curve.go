package pricing

import (
	"errors"
	"fmt"
)

// PriceErrorPoint is one row of the curve shown to buyers: an offered
// version's quality knob, its expected error, and its price.
type PriceErrorPoint struct {
	X     float64 `json:"x"`     // quality = 1/NCP
	Error float64 `json:"error"` // expected reporting error at this quality
	Price float64 `json:"price"`
}

// PriceErrorCurve is the menu the broker presents in step 2 of the
// broker–buyer interaction (Figure 1C): for each offered NCP the expected
// error under the buyer's chosen ε and the corresponding price.
type PriceErrorCurve struct {
	// Model and LossName identify the (m, ε) pair the curve belongs to.
	Model    string
	LossName string
	points   []PriceErrorPoint
	errs     *ErrorCurve
	price    *Function
}

// ErrOverBudget is wrapped by PointForPriceBudget when even the cheapest
// version exceeds the buyer's budget.
var ErrOverBudget = errors.New("pricing: price budget below the cheapest version")

// NewPriceErrorCurve combines an error transformation with a pricing
// function over the same quality axis.
func NewPriceErrorCurve(model string, errs *ErrorCurve, price *Function) (*PriceErrorCurve, error) {
	if errs == nil || price == nil {
		return nil, errors.New("pricing: nil error curve or pricing function")
	}
	pts := make([]PriceErrorPoint, len(errs.Xs))
	for i, x := range errs.Xs {
		pts[i] = PriceErrorPoint{X: x, Error: errs.Errs[i], Price: price.Price(x)}
	}
	return &PriceErrorCurve{
		Model:    model,
		LossName: errs.LossName,
		points:   pts,
		errs:     errs,
		price:    price,
	}, nil
}

// Points returns the menu rows in increasing quality order.
func (c *PriceErrorCurve) Points() []PriceErrorPoint {
	return append([]PriceErrorPoint(nil), c.points...)
}

// PriceAt returns the price of quality x.
func (c *PriceErrorCurve) PriceAt(x float64) float64 { return c.price.Price(x) }

// ErrorAt returns the expected error of quality x.
func (c *PriceErrorCurve) ErrorAt(x float64) float64 { return c.errs.Err(x) }

// PointForErrorBudget implements the buyer's second option (Section 3.2):
// the cheapest version whose expected error is at most budget,
//
//	δ* = argmin_δ p(δ)  s.t.  E[ε(h_δ, D)] ≤ budget.
//
// Because the price is monotone in quality and the error anti-monotone,
// this is the lowest quality meeting the budget.
func (c *PriceErrorCurve) PointForErrorBudget(budget float64) (PriceErrorPoint, error) {
	x, err := c.errs.XForError(budget)
	if err != nil {
		//lint:allocok refusal path: the request is being rejected, not served
		return PriceErrorPoint{}, fmt.Errorf("pricing: error budget %v: %w", budget, err)
	}
	return PriceErrorPoint{X: x, Error: c.errs.Err(x), Price: c.price.Price(x)}, nil
}

// PointForPriceBudget implements the buyer's third option: the most
// accurate version whose price is within budget,
//
//	δ* = argmin_δ E[ε(h_δ, D)]  s.t.  p(δ) ≤ budget.
//
// With a monotone price this is the highest affordable quality, found by
// scanning the offered grid (and refining by bisection between grid knots).
func (c *PriceErrorCurve) PointForPriceBudget(budget float64) (PriceErrorPoint, error) {
	if budget < c.points[0].Price {
		//lint:allocok refusal path: the request is being rejected, not served
		return PriceErrorPoint{}, fmt.Errorf("pricing: budget %v < cheapest price %v: %w",
			budget, c.points[0].Price, ErrOverBudget)
	}
	// Largest grid quality still affordable.
	hi := 0
	for i, p := range c.points {
		if p.Price <= budget {
			hi = i
		}
	}
	x := c.points[hi].X
	if hi+1 < len(c.points) {
		// Refine between the affordable knot and the next one.
		lo, up := c.points[hi].X, c.points[hi+1].X
		for iter := 0; iter < 60; iter++ {
			mid := (lo + up) / 2
			if c.price.Price(mid) <= budget {
				lo = mid
			} else {
				up = mid
			}
		}
		x = lo
	}
	return PriceErrorPoint{X: x, Error: c.errs.Err(x), Price: c.price.Price(x)}, nil
}

// PointAt implements the buyer's first option: pick the offered version at
// quality x directly (clamped to the offered range).
func (c *PriceErrorCurve) PointAt(x float64) PriceErrorPoint {
	lo, hi := c.points[0].X, c.points[len(c.points)-1].X
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return PriceErrorPoint{X: x, Error: c.errs.Err(x), Price: c.price.Price(x)}
}
