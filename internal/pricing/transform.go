package pricing

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"nimbus/internal/dataset"
	"nimbus/internal/isotone"
	"nimbus/internal/ml"
	"nimbus/internal/noise"
	"nimbus/internal/rng"
)

// ErrorCurve is the error transformation of Figure 2: the expected
// reporting error E[ε(h_δ, D)] as a function of the quality knob x = 1/δ.
// For strictly convex ε the curve is strictly decreasing (Theorem 4), which
// makes it invertible — the error-inverse φ of Theorem 6.
type ErrorCurve struct {
	// LossName records which ε the curve was computed for.
	LossName string
	// Xs is the increasing quality grid (x = 1/NCP).
	Xs []float64
	// Errs is the non-increasing expected error at each grid point.
	Errs []float64
}

// ErrUnattainable is wrapped by XForError when the requested error budget is
// below the best error any offered version achieves.
var ErrUnattainable = errors.New("pricing: error budget unattainable")

// newErrorCurve validates grid shape and enforces monotonicity.
func newErrorCurve(lossName string, xs, errs []float64) (*ErrorCurve, error) {
	if len(xs) < 2 {
		return nil, fmt.Errorf("pricing: error curve needs ≥ 2 grid points, got %d", len(xs))
	}
	if len(xs) != len(errs) {
		return nil, fmt.Errorf("pricing: %d grid points but %d errors", len(xs), len(errs))
	}
	if !sort.Float64sAreSorted(xs) {
		return nil, fmt.Errorf("pricing: quality grid must be increasing")
	}
	for i, x := range xs {
		if x <= 0 {
			return nil, fmt.Errorf("pricing: quality grid point %d is %v, must be positive", i, x)
		}
		// The grid is already known to be sorted, so a point that fails to
		// strictly exceed its predecessor is a duplicate — no bitwise float
		// equality needed.
		if i > 0 && x <= xs[i-1] {
			return nil, fmt.Errorf("pricing: duplicate quality grid point %v", x)
		}
	}
	// Monte-Carlo estimates fluctuate; project onto the non-increasing cone
	// so the curve is a valid transformation (the true curve is monotone by
	// Theorem 4).
	smooth, err := isotone.RegressAntitonic(errs, nil)
	if err != nil {
		return nil, err
	}
	return &ErrorCurve{LossName: lossName, Xs: append([]float64(nil), xs...), Errs: smooth}, nil
}

// Err interpolates the expected error at quality x, clamping outside the
// grid to the boundary values.
func (c *ErrorCurve) Err(x float64) float64 {
	if x <= c.Xs[0] {
		return c.Errs[0]
	}
	last := len(c.Xs) - 1
	if x >= c.Xs[last] {
		return c.Errs[last]
	}
	// SearchFloat64s returns the first index with Xs[i] >= x, so x >= Xs[i]
	// can only hold on an exact grid hit: resolve it by grid index rather
	// than bitwise float equality, which keeps knot lookups exact without
	// an equality comparison the Monte-Carlo jitter could invalidate.
	i := sort.SearchFloat64s(c.Xs, x)
	if x >= c.Xs[i] {
		return c.Errs[i]
	}
	t := (x - c.Xs[i-1]) / (c.Xs[i] - c.Xs[i-1])
	return c.Errs[i-1] + t*(c.Errs[i]-c.Errs[i-1])
}

// XForError is the error-inverse φ: the smallest (cheapest) quality x on
// the curve whose expected error is at most target. Budgets looser than the
// worst offered error clamp to the lowest quality; budgets tighter than the
// best achievable error return ErrUnattainable.
func (c *ErrorCurve) XForError(target float64) (float64, error) {
	last := len(c.Xs) - 1
	if target < c.Errs[last]-1e-12 {
		//lint:allocok refusal path: the budget is unattainable and the request is rejected
		return 0, fmt.Errorf("pricing: best offered error is %v, budget %v: %w", c.Errs[last], target, ErrUnattainable)
	}
	if target >= c.Errs[0] {
		return c.Xs[0], nil
	}
	// Errs is non-increasing; find the first index with Errs[i] ≤ target.
	// Hand-rolled binary search — a sort.Search closure would allocate on
	// every error-budget quote, and this sits on the broker's buy path.
	i, hi := 0, len(c.Errs)
	for i < hi {
		mid := int(uint(i+hi) >> 1)
		if c.Errs[mid] > target {
			i = mid + 1
		} else {
			hi = mid
		}
	}
	// Interpolate within the bracketing segment for a continuous inverse.
	// Errs is non-increasing, so a segment that is not strictly decreasing
	// is flat; an ordered comparison detects it without float equality (and
	// also guards the division below against a zero denominator).
	e0, e1 := c.Errs[i-1], c.Errs[i]
	if e0 <= e1 {
		return c.Xs[i], nil
	}
	t := (e0 - target) / (e0 - e1)
	return c.Xs[i-1] + t*(c.Xs[i]-c.Xs[i-1]), nil
}

// TransformConfig describes a Monte-Carlo error transformation run: for
// each grid quality x, draw Samples noisy instances at δ = 1/x and average
// the reporting loss, reproducing the paper's Figure 6 methodology (2000
// random models per NCP).
type TransformConfig struct {
	// Optimal is the trained optimal model instance h*.
	//
	//lint:source TransformConfig.Optimal
	Optimal []float64
	// Loss is the reporting error function ε.
	Loss ml.Loss
	// Data is the dataset ε is evaluated on (test set by convention).
	Data *dataset.Dataset
	// Mechanism injects the noise; nil means the Gaussian mechanism.
	Mechanism noise.Mechanism
	// Xs is the quality grid; empty means DefaultGrid(100).
	Xs []float64
	// Samples per grid point; 0 means 2000 (the paper's setting).
	Samples int
	// Seed drives the Monte-Carlo stream.
	Seed int64
}

// DefaultGrid returns the paper's 1/NCP grid: n evenly spaced qualities
// from 1 to 100.
func DefaultGrid(n int) []float64 {
	if n < 2 {
		n = 2
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1 + 99*float64(i)/float64(n-1)
	}
	return xs
}

// MonteCarloTransform estimates the error curve empirically. It works for
// any reporting loss, including the non-convex zero-one error.
//
// Grid points are evaluated concurrently (this is the broker's listing
// bottleneck); each point derives its own noise stream from the base seed,
// so results are deterministic and independent of GOMAXPROCS.
func MonteCarloTransform(cfg TransformConfig) (*ErrorCurve, error) {
	if cfg.Optimal == nil {
		return nil, errors.New("pricing: TransformConfig.Optimal is nil")
	}
	if cfg.Loss == nil {
		return nil, errors.New("pricing: TransformConfig.Loss is nil")
	}
	if cfg.Data == nil {
		return nil, errors.New("pricing: TransformConfig.Data is nil")
	}
	mech := cfg.Mechanism
	if mech == nil {
		mech = noise.Gaussian{}
	}
	xs := cfg.Xs
	if len(xs) == 0 {
		xs = DefaultGrid(100)
	}
	samples := cfg.Samples
	if samples == 0 {
		samples = 2000
	}
	for _, x := range xs {
		if x <= 0 {
			return nil, fmt.Errorf("pricing: quality grid point %v must be positive", x)
		}
	}
	errs := make([]float64, len(xs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(xs) {
		workers = len(xs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// Per-point derived seed: deterministic under any
				// parallelism.
				src := rng.New(cfg.Seed + 1000003*int64(i))
				delta := 1 / xs[i]
				var sum float64
				for s := 0; s < samples; s++ {
					noisy := mech.Perturb(cfg.Optimal, delta, src)
					sum += cfg.Loss.Eval(noisy, cfg.Data)
				}
				errs[i] = sum / float64(samples)
			}
		}()
	}
	for i := range xs {
		next <- i
	}
	close(next)
	wg.Wait()
	return newErrorCurve(cfg.Loss.Name(), xs, errs)
}

// AnalyticSquaredTransform computes the error curve for the squared loss in
// closed form. For the calibrated mechanisms with per-coordinate variance
// δ/d,
//
//	E[λ(h* + w, D)] = λ(h*, D) + (δ/d)·tr(XᵀX)/(2n) + Reg·δ,
//
// since the cross terms vanish in expectation. This is exact, so the
// ablation benches compare it against the Monte-Carlo estimate.
func AnalyticSquaredTransform(optimal []float64, loss ml.SquaredLoss, data *dataset.Dataset, xs []float64) (*ErrorCurve, error) {
	if len(xs) == 0 {
		xs = DefaultGrid(100)
	}
	base := loss.Eval(optimal, data)
	trace := data.Features.Gram().Trace()
	d := float64(data.D())
	n := float64(data.N())
	errs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return nil, fmt.Errorf("pricing: quality grid point %v must be positive", x)
		}
		delta := 1 / x
		errs[i] = base + delta/d*trace/(2*n) + loss.Reg*delta
	}
	return newErrorCurve(loss.Name(), xs, errs)
}

// ExactCurve wraps an analytically-known expected-error sequence in an
// ErrorCurve. Callers with closed-form error laws (the linear-regression
// squared loss, the Example 1 aggregate mechanisms) use this instead of
// Monte Carlo; the sequence must be over an increasing positive grid and is
// projected to monotone like every other curve.
func ExactCurve(lossName string, xs, errs []float64) (*ErrorCurve, error) {
	return newErrorCurve(lossName, xs, errs)
}

// SquaredToOptimalCurve is the exact curve for the paper's ε_s(h, D) =
// ‖h − h*‖² reporting error, for which E[ε_s] = δ = 1/x (Lemma 3).
func SquaredToOptimalCurve(xs []float64) (*ErrorCurve, error) {
	if len(xs) == 0 {
		xs = DefaultGrid(100)
	}
	errs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return nil, fmt.Errorf("pricing: quality grid point %v must be positive", x)
		}
		errs[i] = 1 / x
	}
	return newErrorCurve("squared-to-optimal", xs, errs)
}
