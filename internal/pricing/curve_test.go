package pricing

import (
	"errors"
	"math"
	"testing"

	"nimbus/internal/rng"
)

func newSrc() *rng.Source { return rng.New(99) }

func buyerCurve(t *testing.T) *PriceErrorCurve {
	t.Helper()
	errs, err := SquaredToOptimalCurve(DefaultGrid(30))
	if err != nil {
		t.Fatal(err)
	}
	price, err := NewFunction([]Point{{X: 1, Price: 10}, {X: 50, Price: 60}, {X: 100, Price: 80}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewPriceErrorCurve("linear-regression", errs, price)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewPriceErrorCurveValidation(t *testing.T) {
	if _, err := NewPriceErrorCurve("m", nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestCurvePointsConsistent(t *testing.T) {
	c := buyerCurve(t)
	pts := c.Points()
	if len(pts) != 30 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Price-c.PriceAt(p.X)) > 1e-12 || math.Abs(p.Error-c.ErrorAt(p.X)) > 1e-12 {
			t.Fatalf("inconsistent point %+v", p)
		}
	}
	// Prices non-decreasing, errors non-increasing along the menu.
	for i := 1; i < len(pts); i++ {
		if pts[i].Price < pts[i-1].Price-1e-9 {
			t.Fatal("menu prices decrease")
		}
		if pts[i].Error > pts[i-1].Error+1e-9 {
			t.Fatal("menu errors increase")
		}
	}
}

func TestPointForErrorBudget(t *testing.T) {
	c := buyerCurve(t)
	p, err := c.PointForErrorBudget(0.1) // needs x ≥ 10
	if err != nil {
		t.Fatal(err)
	}
	if p.Error > 0.1+1e-9 {
		t.Fatalf("returned error %v over budget", p.Error)
	}
	// Must be the cheapest satisfying option: a slightly tighter point
	// should cost at least as much.
	p2, err := c.PointForErrorBudget(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Price < p.Price {
		t.Fatalf("tighter budget got cheaper: %v < %v", p2.Price, p.Price)
	}
	if _, err := c.PointForErrorBudget(1e-6); !errors.Is(err, ErrUnattainable) {
		t.Fatalf("want ErrUnattainable, got %v", err)
	}
}

func TestPointForPriceBudget(t *testing.T) {
	c := buyerCurve(t)
	p, err := c.PointForPriceBudget(35)
	if err != nil {
		t.Fatal(err)
	}
	if p.Price > 35+1e-6 {
		t.Fatalf("price %v over budget", p.Price)
	}
	// Most accurate affordable: spending a bit more must not give a point
	// with much worse error, and the returned price should nearly exhaust
	// the budget on the interior of the curve.
	if p.Price < 35-1 {
		t.Fatalf("budget not exhausted: %v", p.Price)
	}
	rich, err := c.PointForPriceBudget(1000)
	if err != nil {
		t.Fatal(err)
	}
	if rich.X != 100 {
		t.Fatalf("large budget should buy best version, got x=%v", rich.X)
	}
	if _, err := c.PointForPriceBudget(1); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("want ErrOverBudget, got %v", err)
	}
}

func TestPointAtClamps(t *testing.T) {
	c := buyerCurve(t)
	if p := c.PointAt(0.0001); p.X != 1 {
		t.Fatalf("low clamp: %v", p.X)
	}
	if p := c.PointAt(1e9); p.X != 100 {
		t.Fatalf("high clamp: %v", p.X)
	}
	// The curve interpolates 1/x linearly between grid knots, so the value
	// at an off-grid x is close to (and at least) the true 1/42.
	p := c.PointAt(42)
	if p.Error < 1.0/42-1e-12 || p.Error > 1.0/42*1.01 {
		t.Fatalf("PointAt(42).Error = %v", p.Error)
	}
}
