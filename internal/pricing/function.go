// Package pricing is the heart of the Nimbus model-based pricing framework:
// arbitrage-free pricing functions over the inverse noise control parameter
// x = 1/δ, the error↔NCP transformation (Figure 2 of the paper), and the
// price–error curves presented to buyers.
//
// Theorem 5/6 of the paper characterizes arbitrage-freeness for the Gaussian
// mechanism: the price viewed as a function p(x) of x = 1/δ (for the squared
// error, the inverse noise variance; for a strictly convex ε, the image
// under the error-inverse φ) must be non-negative, monotone non-decreasing
// and subadditive. This package represents pricing functions as the
// piecewise-linear extensions of Proposition 1, which satisfy all three
// properties whenever the knot prices are non-negative, non-decreasing and
// have non-increasing price-per-quality ratio z_i/a_i (Lemma 8).
package pricing

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is a knot of a pricing function: quality level X = 1/δ and the
// price charged for it.
type Point struct {
	X     float64 `json:"x"`
	Price float64 `json:"price"`
}

// Function is a piecewise-linear pricing function p(x) over x = 1/NCP, the
// construction from Proposition 1: linear from the origin to the first
// knot, linear between knots, and constant after the last knot.
type Function struct {
	pts []Point
}

// ErrIllFormed is wrapped by NewFunction for structurally invalid knots.
var ErrIllFormed = errors.New("pricing: ill-formed knots")

// ErrArbitrage is wrapped by Validate when the function admits arbitrage.
var ErrArbitrage = errors.New("pricing: arbitrage opportunity")

// NewFunction builds a pricing function from knots. Knots are sorted by X;
// duplicate X values and non-positive X are rejected, as are negative
// prices. The well-behavedness conditions (monotonicity, subadditivity) are
// checked separately by Validate so that callers can also represent the
// paper's deliberately broken baselines.
func NewFunction(pts []Point) (*Function, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("pricing: no knots: %w", ErrIllFormed)
	}
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	for i, p := range sorted {
		if p.X <= 0 || math.IsNaN(p.X) || math.IsInf(p.X, 0) {
			return nil, fmt.Errorf("pricing: knot %d has non-positive quality x=%v: %w", i, p.X, ErrIllFormed)
		}
		if p.Price < 0 || math.IsNaN(p.Price) {
			return nil, fmt.Errorf("pricing: knot %d has negative price %v: %w", i, p.Price, ErrIllFormed)
		}
		// Knots are sorted by X above, so failing to strictly exceed the
		// predecessor means a duplicate — detected by order, not bitwise
		// float equality.
		if i > 0 && p.X <= sorted[i-1].X {
			return nil, fmt.Errorf("pricing: duplicate quality x=%v: %w", p.X, ErrIllFormed)
		}
	}
	return &Function{pts: sorted}, nil
}

// Points returns a copy of the knots in increasing X order.
func (f *Function) Points() []Point {
	return append([]Point(nil), f.pts...)
}

// Price evaluates the piecewise-linear extension at quality x ≥ 0.
func (f *Function) Price(x float64) float64 {
	if x <= 0 {
		return 0
	}
	pts := f.pts
	if x <= pts[0].X {
		return pts[0].Price / pts[0].X * x
	}
	last := pts[len(pts)-1]
	if x >= last.X {
		return last.Price
	}
	// Binary search for the bracketing segment: first i with pts[i].X >= x.
	// Hand-rolled rather than sort.Search — the closure would allocate on
	// every price quote, and this sits on the broker's per-request path.
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].X < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	a, b := pts[i-1], pts[i]
	t := (x - a.X) / (b.X - a.X)
	return a.Price + t*(b.Price-a.Price)
}

// PriceAtNCP evaluates the price for noise control parameter δ (= 1/x).
func (f *Function) PriceAtNCP(delta float64) float64 {
	if delta <= 0 {
		// δ → 0 means a perfect model: the supremum price.
		return f.pts[len(f.pts)-1].Price
	}
	return f.Price(1 / delta)
}

const tol = 1e-9

// Validate checks well-behavedness per Definition 5 via the Theorem 5
// characterization on the knots: non-negative prices, monotone
// non-decreasing, and z_i/a_i non-increasing (which implies subadditivity
// of the piecewise-linear extension, Lemma 8 + Proposition 1).
func (f *Function) Validate() error {
	for i := 1; i < len(f.pts); i++ {
		prev, cur := f.pts[i-1], f.pts[i]
		if cur.Price < prev.Price-tol {
			return fmt.Errorf("pricing: price drops from %v@%v to %v@%v (error monotonicity violated): %w",
				prev.Price, prev.X, cur.Price, cur.X, ErrArbitrage)
		}
		if cur.Price/cur.X > prev.Price/prev.X+tol {
			return fmt.Errorf("pricing: price-per-quality rises from %v@%v to %v@%v (subadditivity violated): %w",
				prev.Price/prev.X, prev.X, cur.Price/cur.X, cur.X, ErrArbitrage)
		}
	}
	return nil
}

// IsArbitrageFree reports whether the function is well-behaved.
func (f *Function) IsArbitrageFree() bool { return f.Validate() == nil }

// MaxPrice returns the supremum of the function (the last knot's price once
// validated; for unvalidated knots, the max over knots).
func (f *Function) MaxPrice() float64 {
	m := 0.0
	for _, p := range f.pts {
		if p.Price > m {
			m = p.Price
		}
	}
	return m
}

// Constant returns the constant pricing function p(x) = c (used by the
// MaxC/MedC/OptC baselines). A constant non-negative function is trivially
// monotone and subadditive.
func Constant(xs []float64, c float64) (*Function, error) {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Price: c}
	}
	return NewFunction(pts)
}

// Linear returns the pricing function interpolating linearly between
// (x_min, lo) and (x_max, hi) over the quality grid xs — the paper's Lin
// baseline.
func Linear(xs []float64, lo, hi float64) (*Function, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("pricing: Linear needs a quality grid: %w", ErrIllFormed)
	}
	xmin, xmax := xs[0], xs[0]
	for _, x := range xs {
		xmin = math.Min(xmin, x)
		xmax = math.Max(xmax, x)
	}
	pts := make([]Point, len(xs))
	for i, x := range xs {
		t := 0.0
		if xmax > xmin {
			t = (x - xmin) / (xmax - xmin)
		}
		pts[i] = Point{X: x, Price: lo + t*(hi-lo)}
	}
	return NewFunction(pts)
}

// CheckSubadditiveOnGrid exhaustively verifies p(x+y) ≤ p(x) + p(y) for all
// grid pairs x, y in (0, max]; it is the test-suite's independent oracle for
// the Theorem 5 condition, usable against any price function.
func CheckSubadditiveOnGrid(price func(float64) float64, max float64, steps int) error {
	if steps < 2 {
		return errors.New("pricing: need at least 2 grid steps")
	}
	h := max / float64(steps)
	for i := 1; i <= steps; i++ {
		x := float64(i) * h
		for j := i; i+j <= steps; j++ {
			y := float64(j) * h
			if price(x+y) > price(x)+price(y)+1e-7*(1+price(x+y)) {
				return fmt.Errorf("pricing: p(%v)+p(%v)=%v < p(%v)=%v: %w",
					x, y, price(x)+price(y), x+y, price(x+y), ErrArbitrage)
			}
		}
	}
	return nil
}

// CheckMonotoneOnGrid verifies p is non-decreasing on a grid over (0, max].
func CheckMonotoneOnGrid(price func(float64) float64, max float64, steps int) error {
	if steps < 2 {
		return errors.New("pricing: need at least 2 grid steps")
	}
	h := max / float64(steps)
	prev := price(h)
	for i := 2; i <= steps; i++ {
		cur := price(float64(i) * h)
		if cur < prev-1e-9*(1+math.Abs(prev)) {
			return fmt.Errorf("pricing: p decreases at x=%v (%v -> %v): %w", float64(i)*h, prev, cur, ErrArbitrage)
		}
		prev = cur
	}
	return nil
}
