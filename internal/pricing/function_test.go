package pricing

import (
	"errors"
	"math"
	"testing"

	"nimbus/internal/rng"
)

func mustFunc(t *testing.T, pts []Point) *Function {
	t.Helper()
	f, err := NewFunction(pts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFunctionValidation(t *testing.T) {
	cases := map[string][]Point{
		"empty":          {},
		"zero x":         {{X: 0, Price: 1}},
		"negative x":     {{X: -1, Price: 1}},
		"negative price": {{X: 1, Price: -1}},
		"duplicate x":    {{X: 1, Price: 1}, {X: 1, Price: 2}},
		"nan x":          {{X: math.NaN(), Price: 1}},
	}
	for name, pts := range cases {
		if _, err := NewFunction(pts); !errors.Is(err, ErrIllFormed) {
			t.Errorf("%s: want ErrIllFormed, got %v", name, err)
		}
	}
}

func TestNewFunctionSorts(t *testing.T) {
	f := mustFunc(t, []Point{{X: 3, Price: 30}, {X: 1, Price: 10}, {X: 2, Price: 20}})
	pts := f.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatalf("not sorted: %v", pts)
		}
	}
}

func TestPriceEvaluation(t *testing.T) {
	f := mustFunc(t, []Point{{X: 2, Price: 10}, {X: 4, Price: 14}})
	cases := []struct{ x, want float64 }{
		{0, 0},
		{-1, 0},
		{1, 5},   // origin segment: (10/2)·1
		{2, 10},  // knot
		{3, 12},  // midpoint of segment
		{4, 14},  // last knot
		{10, 14}, // constant beyond last knot
	}
	for _, c := range cases {
		if got := f.Price(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Price(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPriceAtNCP(t *testing.T) {
	f := mustFunc(t, []Point{{X: 2, Price: 10}, {X: 4, Price: 14}})
	if got := f.PriceAtNCP(0.5); got != 10 { // δ=0.5 → x=2
		t.Fatalf("PriceAtNCP(0.5) = %v", got)
	}
	if got := f.PriceAtNCP(0); got != 14 { // perfect model → sup price
		t.Fatalf("PriceAtNCP(0) = %v", got)
	}
}

func TestValidateAcceptsWellBehaved(t *testing.T) {
	f := mustFunc(t, []Point{{X: 1, Price: 10}, {X: 2, Price: 15}, {X: 4, Price: 20}})
	if err := f.Validate(); err != nil {
		t.Fatalf("well-behaved function rejected: %v", err)
	}
	if !f.IsArbitrageFree() {
		t.Fatal("IsArbitrageFree false")
	}
}

func TestValidateRejectsNonMonotone(t *testing.T) {
	f := mustFunc(t, []Point{{X: 1, Price: 10}, {X: 2, Price: 5}})
	if err := f.Validate(); !errors.Is(err, ErrArbitrage) {
		t.Fatalf("want ErrArbitrage, got %v", err)
	}
}

func TestValidateRejectsSuperadditive(t *testing.T) {
	// Ratio rises: 10/1 = 10 then 25/2 = 12.5 — doubling quality more than
	// doubles the price, the paper's canonical arbitrage case.
	f := mustFunc(t, []Point{{X: 1, Price: 10}, {X: 2, Price: 25}})
	if err := f.Validate(); !errors.Is(err, ErrArbitrage) {
		t.Fatalf("want ErrArbitrage, got %v", err)
	}
}

// Lemma 8 / Proposition 1 property: any validated function's piecewise
// linear extension is subadditive and monotone on a fine grid.
func TestValidatedImpliesSubadditiveExtension(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 40; trial++ {
		n := 2 + src.Intn(6)
		pts := make([]Point, n)
		x := 0.0
		price := 0.0
		ratio := 5 + src.Float64()*10
		for i := 0; i < n; i++ {
			x += 0.5 + src.Float64()*2
			// Keep ratio non-increasing and price non-decreasing:
			// price_i ∈ [price_{i-1}, ratio_{i-1}·x_i].
			maxP := ratio * x
			price = price + src.Float64()*(maxP-price)
			pts[i] = Point{X: x, Price: price}
			ratio = price / x
		}
		f := mustFunc(t, pts)
		if err := f.Validate(); err != nil {
			t.Fatalf("trial %d: constructed function invalid: %v", trial, err)
		}
		if err := CheckSubadditiveOnGrid(f.Price, x*2, 60); err != nil {
			t.Fatalf("trial %d: %v (pts %v)", trial, err, pts)
		}
		if err := CheckMonotoneOnGrid(f.Price, x*2, 200); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCheckersCatchViolations(t *testing.T) {
	super := func(x float64) float64 { return x * x } // superadditive
	if err := CheckSubadditiveOnGrid(super, 10, 20); err == nil {
		t.Fatal("x² accepted as subadditive")
	}
	dec := func(x float64) float64 { return 10 - x }
	if err := CheckMonotoneOnGrid(dec, 5, 20); err == nil {
		t.Fatal("decreasing function accepted as monotone")
	}
	if err := CheckSubadditiveOnGrid(math.Sqrt, 10, 40); err != nil {
		t.Fatalf("√x rejected: %v", err)
	}
	if err := CheckSubadditiveOnGrid(super, 10, 1); err == nil {
		t.Fatal("must reject tiny grids")
	}
	if err := CheckMonotoneOnGrid(dec, 5, 1); err == nil {
		t.Fatal("must reject tiny grids")
	}
}

func TestConstantAndLinearBuilders(t *testing.T) {
	xs := []float64{1, 2, 5, 10}
	c, err := Constant(xs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("constant function not well-behaved: %v", err)
	}
	for _, x := range xs {
		if c.Price(x) != 7 {
			t.Fatalf("Constant price at %v = %v", x, c.Price(x))
		}
	}
	l, err := Linear(xs, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("linear function not well-behaved: %v", err)
	}
	if l.Price(1) != 2 || l.Price(10) != 20 {
		t.Fatalf("linear endpoints: %v, %v", l.Price(1), l.Price(10))
	}
	if _, err := Linear(nil, 0, 1); err == nil {
		t.Fatal("Linear accepted empty grid")
	}
	if l.MaxPrice() != 20 {
		t.Fatalf("MaxPrice = %v", l.MaxPrice())
	}
}
