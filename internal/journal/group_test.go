package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nimbus/internal/telemetry"
)

// cacheFS simulates the OS page cache for fault injection: Write buffers
// in memory and bytes reach the real file only on Sync, so a test can
// crash the "machine" — not just the process — by abandoning the journal;
// unsynced bytes vanish exactly as a power cut would lose them.
type cacheFS struct{ OSFS }

func (f cacheFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	base, err := f.OSFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &cacheFile{File: base}, nil
}

type cacheFile struct {
	File
	mu  sync.Mutex
	buf []byte // written but not yet synced
}

func (c *cacheFile) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, p...)
	return len(p), nil
}

func (c *cacheFile) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buf) > 0 {
		if _, err := c.File.Write(c.buf); err != nil {
			return err
		}
		c.buf = c.buf[:0]
	}
	return c.File.Sync()
}

// TestIntervalFlushesIdleTail is the idle-durability fix: under
// SyncInterval, a record followed by silence must still be flushed within
// the SyncEvery window by the armed timer — not wait for the next append,
// rotation or Close, which may never come. The simulated machine crash
// then shows the tail survived.
func TestIntervalFlushesIdleTail(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	j, err := Open(dir, Options{
		Sync: SyncInterval, SyncEvery: 5 * time.Millisecond,
		FS: cacheFS{}, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("idle-tail")); err != nil {
		t.Fatal(err)
	}
	// No further journal activity: only the timer can flush the record.
	fsyncs := reg.Counter("nimbus_journal_fsyncs_total")
	deadline := time.Now().Add(2 * time.Second)
	for fsyncs.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle dirty tail never flushed")
		}
		time.Sleep(time.Millisecond)
	}

	// Machine crash during the idle period: the abandoned journal's
	// unsynced buffer is simply never written. Recovery from the real
	// directory must see the flushed record.
	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, j2); !equalRecords(got, [][]byte{[]byte("idle-tail")}) {
		t.Fatalf("idle tail lost: replayed %d records", len(got))
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	// Shut the abandoned journal down so its sync loop does not outlive
	// the test (the crash already happened from recovery's point of view).
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitSingleAppend(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	j, err := Open(dir, Options{Sync: SyncGroup, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	// An uncontended append is a batch of one: one group commit, one fsync,
	// acknowledged only after the fsync — SyncAlways semantics.
	if got := reg.Counter("nimbus_journal_group_commits_total").Value(); got != 1 {
		t.Fatalf("group commits %d, want 1", got)
	}
	if got := reg.Counter("nimbus_journal_fsyncs_total").Value(); got != 1 {
		t.Fatalf("fsyncs %d, want 1", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := replayAll(t, j2); !equalRecords(got, [][]byte{[]byte("solo")}) {
		t.Fatalf("replayed %d records", len(got))
	}
}

func TestGroupCommitConcurrentAppendsAllDurable(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	j, err := Open(dir, Options{Sync: SyncGroup, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	const workers, appends = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				if err := j.Append([]byte(fmt.Sprintf("w%d-r%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged append is on disk, and the flush count is the
	// batch count: contended appends shared fsyncs instead of queueing for
	// their own.
	commits := reg.Counter("nimbus_journal_group_commits_total").Value()
	fsyncs := reg.Counter("nimbus_journal_fsyncs_total").Value()
	if commits < 1 || commits > workers*appends {
		t.Fatalf("group commits %d outside [1, %d]", commits, workers*appends)
	}
	if fsyncs != commits {
		t.Fatalf("fsyncs %d != group commits %d", fsyncs, commits)
	}

	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := replayAll(t, j2)
	if len(got) != workers*appends {
		t.Fatalf("replayed %d records, want %d", len(got), workers*appends)
	}
	seen := make(map[string]bool, len(got))
	for _, rec := range got {
		seen[string(rec)] = true
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < appends; i++ {
			if key := fmt.Sprintf("w%d-r%d", w, i); !seen[key] {
				t.Fatalf("record %s acknowledged but not recovered", key)
			}
		}
	}
}

func TestAppendManyFailureRollsBackWholeBatch(t *testing.T) {
	dir := t.TempDir()
	// The batch write tears mid-buffer; the journal must cut the whole
	// batch back off (all-or-nothing) and keep working.
	fs := &faultFS{writesUntilFail: 1, tearBytes: 7}
	j, err := Open(dir, Options{Sync: SyncNever, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	batch := [][]byte{[]byte("batch-a"), []byte("batch-b"), []byte("batch-c")}
	if err := j.AppendMany(batch); !errors.Is(err, errInjectedWrite) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	if err := j.Append([]byte("after")); err != nil {
		t.Fatalf("journal unusable after rolled-back batch: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	want := [][]byte{[]byte("before"), []byte("after")}
	if got := replayAll(t, j2); !equalRecords(got, want) {
		t.Fatalf("replayed %d records, want before+after with no batch remnants", len(got))
	}
}

// TestEveryPrefixOfGroupBatchesRecovers is the crash-recovery property
// over group-committed batches: however many bytes of a batched record
// stream survive a crash, recovery replays a prefix of the acknowledged
// sequence — a torn batch tail loses records only from the end, never
// from the middle of a batch.
func TestEveryPrefixOfGroupBatchesRecovers(t *testing.T) {
	master := t.TempDir()
	j, err := Open(master, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	var flat [][]byte
	var n int
	for _, size := range []int{1, 3, 2, 4, 1} {
		batch := make([][]byte, size)
		for i := range batch {
			batch[i] = []byte(fmt.Sprintf("batch-record-%02d", n))
			flat = append(flat, batch[i])
			n++
		}
		if err := j.AppendMany(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segName, body := readOnlySegment(t, master)

	prevK := -1
	for cut := 0; cut <= len(body); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), body[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := replayAll(t, j2)
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		if !equalRecords(got, flat[:len(got)]) {
			t.Fatalf("cut %d: recovered records are not a prefix", cut)
		}
		if len(got) < prevK {
			t.Fatalf("cut %d: recovered %d records, previously %d", cut, len(got), prevK)
		}
		prevK = len(got)
	}
	if prevK != len(flat) {
		t.Fatalf("full journal recovered %d of %d records", prevK, len(flat))
	}
}

// readOnlySegment returns the name and bytes of the journal's single
// segment, failing if the journal rotated.
func readOnlySegment(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	body, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Base(segs[0]), body
}
