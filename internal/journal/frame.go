package journal

import (
	"encoding/binary"
	"hash/crc32"
)

// Frame layout. Every journal record is framed as
//
//	offset  size  field
//	0       4     payload length n, uint32 little-endian (1 ≤ n ≤ MaxRecordSize)
//	4       4     CRC32-C (Castagnoli) of the payload, uint32 little-endian
//	8       n     payload bytes
//
// frames are written back-to-back with no padding, so a segment is valid
// exactly when it is a concatenation of intact frames. The checksum is
// over the payload only; a corrupted length field either points past the
// end of the segment (classified as a torn tail) or lands the CRC check
// on the wrong bytes (classified by where the damage sits, see
// scanFrames).

const (
	frameHeaderSize = 8

	// MaxRecordSize bounds a single record payload (64 MiB). The ledger's
	// records are a few hundred bytes; the cap exists so a corrupted
	// length field cannot make the scanner allocate gigabytes.
	MaxRecordSize = 64 << 20
)

// castagnoli is the CRC32-C polynomial table. CRC32-C has hardware
// support on amd64/arm64, which keeps framing overhead out of the append
// hot path.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the framed encoding of payload to dst and returns
// the extended slice.
//
//lint:allocok appends into the caller's reusable frame buffer, whose growth amortizes across batches
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// scanStatus classifies how a segment's byte stream ends.
type scanStatus int

const (
	// scanClean: the buffer is exactly a concatenation of intact frames.
	scanClean scanStatus = iota
	// scanTorn: an intact prefix is followed by a partial or
	// checksum-failing final frame with nothing but that frame (or
	// zero-fill) after it — the signature of a write cut short by a
	// crash. Recovery truncates the tail and keeps the prefix.
	scanTorn
	// scanCorrupt: a bad frame is followed by more data, i.e. damage in
	// the middle of the stream. Truncating here would silently drop
	// records that were once durable, so recovery refuses.
	scanCorrupt
)

func (s scanStatus) String() string {
	switch s {
	case scanClean:
		return "clean"
	case scanTorn:
		return "torn"
	default:
		return "corrupt"
	}
}

// scanFrames walks buf from the start, invoking fn (when non-nil) with
// each intact frame's payload. It returns the byte length of the valid
// prefix, the number of intact frames, and how the stream ends. A non-nil
// error from fn aborts the walk and is returned verbatim.
//
// Classification rules, in order, at the first non-intact frame:
//
//   - header or payload extends past the end of the buffer → torn
//   - zero-length frame: a run of zero bytes to the end is a zero-filled
//     torn tail; anything else after it is corruption (a genuine empty
//     record is never written, and CRC32-C of the empty payload is 0, so
//     an all-zero header would otherwise decode as a valid record)
//   - checksum mismatch with nothing (or only zero-fill) after the frame
//     → torn; with real data after it → corrupt
func scanFrames(buf []byte, fn func(payload []byte) error) (validLen int64, frames int, status scanStatus, err error) {
	off := int64(0)
	n := int64(len(buf))
	for {
		if off == n {
			return off, frames, scanClean, nil
		}
		if n-off < frameHeaderSize {
			return off, frames, scanTorn, nil
		}
		plen := int64(binary.LittleEndian.Uint32(buf[off : off+4]))
		want := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		end := off + frameHeaderSize + plen
		if plen == 0 {
			if allZero(buf[off:]) {
				return off, frames, scanTorn, nil
			}
			return off, frames, scanCorrupt, nil
		}
		if end > n || plen > MaxRecordSize {
			if end > n {
				return off, frames, scanTorn, nil
			}
			return off, frames, scanCorrupt, nil
		}
		payload := buf[off+frameHeaderSize : end]
		if crc32.Checksum(payload, castagnoli) != want {
			if end == n || allZero(buf[end:]) {
				return off, frames, scanTorn, nil
			}
			return off, frames, scanCorrupt, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, frames, scanClean, err
			}
		}
		frames++
		off = end
	}
}

// allZero reports whether every byte of b is zero (a zero-filled tail, as
// left behind by a crash that extended the file before the data pages
// reached disk).
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
