package journal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Compact folds everything the journal holds — snapshot plus all appended
// records — into one fresh snapshot, then deletes the segments it covers.
// The write callback must serialize the caller's full current state (for
// the broker: the whole sale ledger); the journal cannot derive it from
// records alone.
//
// The snapshot is published atomically (temp file + fsync + rename +
// directory fsync), and the ordering makes every crash window safe:
//
//  1. seal the tail segment (fsync + close) — all records durable;
//  2. write snap-(tail+1) atomically — a crash before the rename leaves
//     the old snapshot + all segments (old state), after it the new
//     snapshot simply supersedes them;
//  3. delete the covered segments and the old snapshot — a crash halfway
//     leaves redundant files that the next Open removes;
//  4. start the fresh tail segment seg-(tail+1).
//
// Callers must not append concurrently with the state callback if the
// snapshot is supposed to cover those appends; nimbusd compacts after the
// HTTP server has drained.
func (j *Journal) Compact(write func(io.Writer) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.failed != nil {
		return fmt.Errorf("journal: poisoned by earlier failure: %w", j.failed)
	}
	// Seal the tail so the snapshot strictly covers everything on disk.
	if err := j.tail.Sync(); err != nil {
		j.failed = fmt.Errorf("fsync failed: %w", err)
		return fmt.Errorf("journal: compaction flush: %w", err)
	}
	j.tel.fsyncs.Inc()
	j.dirty = false
	if err := j.tail.Close(); err != nil {
		j.failed = fmt.Errorf("close failed: %w", err)
		return fmt.Errorf("journal: sealing tail for compaction: %w", err)
	}

	next := j.tailSeq + 1
	snapPath := filepath.Join(j.dir, snapName(next))
	if err := WriteFileAtomic(j.fs, snapPath, write); err != nil {
		// Snapshot never happened; reopen the tail so appends can go on.
		f, oerr := j.fs.OpenFile(filepath.Join(j.dir, segName(j.tailSeq)), os.O_WRONLY|os.O_APPEND, 0)
		if oerr != nil {
			j.failed = fmt.Errorf("compaction failed (%v) and tail reopen failed (%v)", err, oerr)
			return fmt.Errorf("journal: writing snapshot: %w", err)
		}
		j.tail = f
		return fmt.Errorf("journal: writing snapshot: %w", err)
	}

	// From here the new snapshot is authoritative; everything older is
	// redundant and recovery ignores it, so removal failures only leak
	// disk, not data. Still report them.
	st, err := listDir(j.fs, j.dir)
	if err != nil {
		return err
	}
	for _, p := range st.staleSnaps {
		if err := j.fs.Remove(p); err != nil {
			return fmt.Errorf("journal: removing superseded snapshot %s: %w", p, err)
		}
	}
	for seq, path := range st.segs {
		if seq < next {
			if err := j.fs.Remove(path); err != nil {
				return fmt.Errorf("journal: removing compacted segment %s: %w", path, err)
			}
		}
	}

	f, err := j.createSegment(next)
	if err != nil {
		j.failed = err
		return err
	}
	j.tail, j.tailSeq, j.tailSize = f, next, 0
	j.replay = nil
	j.snapSeq, j.snapPath = next, snapPath
	j.tel.compactions.Inc()
	j.tel.segments.Set(1)
	return nil
}
