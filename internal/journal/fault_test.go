package journal

import (
	"errors"
	"io"
	"os"
	"sync"
	"testing"
)

// faultFS injects failures at chosen points: it fails the Nth write
// (optionally after letting a prefix of the bytes through — a torn
// write), and can fail fsync or truncate. It exercises every "the power
// went out here" window without actually crashing the process.
type faultFS struct {
	OSFS
	mu sync.Mutex
	// writesUntilFail counts successful writes before the injected
	// failure; negative disables injection.
	writesUntilFail int
	// tearBytes is how many bytes of the failing write still reach the
	// file (a torn write); 0 means the write fails outright.
	tearBytes    int
	failSync     bool
	failTruncate bool
}

var (
	errInjectedWrite    = errors.New("injected write failure")
	errInjectedSync     = errors.New("injected sync failure")
	errInjectedTruncate = errors.New("injected truncate failure")
)

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	base, err := f.OSFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: base, fs: f}, nil
}

type faultFile struct {
	File
	fs *faultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.fs.writesUntilFail == 0 {
		ff.fs.writesUntilFail = -1
		n := ff.fs.tearBytes
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			if _, err := ff.File.Write(p[:n]); err != nil {
				return 0, err
			}
		}
		return n, errInjectedWrite
	}
	if ff.fs.writesUntilFail > 0 {
		ff.fs.writesUntilFail--
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	fail := ff.fs.failSync
	ff.fs.mu.Unlock()
	if fail {
		return errInjectedSync
	}
	return ff.File.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	ff.fs.mu.Lock()
	fail := ff.fs.failTruncate
	ff.fs.mu.Unlock()
	if fail {
		return errInjectedTruncate
	}
	return ff.File.Truncate(size)
}

func TestFailedWriteRollsBackAndJournalContinues(t *testing.T) {
	dir := t.TempDir()
	fs := &faultFS{writesUntilFail: 1} // first append lands, second fails outright
	j, err := Open(dir, Options{Sync: SyncNever, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("second")); !errors.Is(err, errInjectedWrite) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	// The failed frame was cut back off, so the journal keeps working.
	if err := j.Append([]byte("third")); err != nil {
		t.Fatalf("journal unusable after rolled-back failure: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	want := [][]byte{[]byte("first"), []byte("third")}
	if got := replayAll(t, j2); !equalRecords(got, want) {
		t.Fatalf("replayed %d records, want first+third", len(got))
	}
}

func TestTornWritePoisonsUntilReopen(t *testing.T) {
	dir := t.TempDir()
	// The second append tears mid-frame AND the rollback truncate fails:
	// the file now ends in a torn frame the process cannot remove, so the
	// journal must refuse further appends (appending after the tear would
	// manufacture mid-stream corruption).
	fs := &faultFS{writesUntilFail: 1, tearBytes: 5, failTruncate: true}
	j, err := Open(dir, Options{Sync: SyncNever, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("torn-away")); !errors.Is(err, errInjectedWrite) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	if err := j.Append([]byte("after")); err == nil {
		t.Fatal("append accepted on a poisoned journal")
	}
	//lint:ignore no-dropped-error the poisoned journal's close error is part of the simulated crash
	j.Close()

	// Crash-restart: recovery truncates the torn frame and the journal
	// replays the durable prefix.
	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := replayAll(t, j2); !equalRecords(got, [][]byte{[]byte("durable")}) {
		t.Fatalf("replayed %d records after torn write, want 1", len(got))
	}
}

func TestSyncFailurePoisonsUnderAlways(t *testing.T) {
	fs := &faultFS{writesUntilFail: -1, failSync: true}
	j, err := Open(t.TempDir(), Options{Sync: SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("x")); !errors.Is(err, errInjectedSync) {
		t.Fatalf("sync failure not surfaced: %v", err)
	}
	if err := j.Append([]byte("y")); err == nil {
		t.Fatal("append accepted after a failed fsync")
	}
	//lint:ignore no-dropped-error the poisoned journal's close error is the expected outcome here
	j.Close()
}

func TestCompactionSnapshotFailureKeepsJournalUsable(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, records(4))
	boom := errors.New("state serialization failed")
	if err := j.Compact(func(io.Writer) error { return boom }); err == nil {
		t.Fatal("compaction swallowed the snapshot failure")
	}
	// No snapshot was published and appends keep working.
	if _, ok, _ := j.Snapshot(); ok {
		t.Fatal("failed compaction published a snapshot")
	}
	if err := j.Append([]byte("alive")); err != nil {
		t.Fatalf("journal unusable after failed compaction: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	want := append(records(4), []byte("alive"))
	if got := replayAll(t, j2); !equalRecords(got, want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
}
