package journal

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// SegmentReport describes one segment file as Verify found it.
type SegmentReport struct {
	Seq    uint64 `json:"seq"`
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	Frames int    `json:"frames"`
	// ValidBytes is the length of the intact frame prefix.
	ValidBytes int64 `json:"valid_bytes"`
	// Status is "clean", "torn", "corrupt", or "stale" (superseded by the
	// snapshot; recovery ignores and removes it).
	Status string `json:"status"`
}

// Report is the result of a read-only scan of a journal directory: what a
// recovery would replay, and whether it would refuse.
type Report struct {
	Dir           string          `json:"dir"`
	HasSnapshot   bool            `json:"has_snapshot"`
	SnapshotSeq   uint64          `json:"snapshot_seq,omitempty"`
	SnapshotName  string          `json:"snapshot_name,omitempty"`
	SnapshotBytes int64           `json:"snapshot_bytes,omitempty"`
	Segments      []SegmentReport `json:"segments"`
	// RecoverableFrames counts the records a recovery replays on top of
	// the snapshot; TruncatedBytes is what a torn-tail repair would drop.
	RecoverableFrames int   `json:"recoverable_frames"`
	TruncatedBytes    int64 `json:"truncated_bytes"`
	// Err is non-empty when recovery would refuse (mid-stream corruption,
	// missing segment); the remaining fields still describe what was found.
	Err string `json:"error,omitempty"`
}

// Verify scans the journal directory without modifying it and reports
// every segment's framing health plus the overall recoverability verdict.
// It applies the same classification as Open but never truncates or
// deletes anything, so it is safe to run against a live journal (the scan
// may then see a benign in-flight torn tail).
func Verify(dir string, fsys FS) (*Report, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	st, err := listDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	rep := &Report{Dir: dir}
	if st.snapPath != "" {
		rep.HasSnapshot = true
		rep.SnapshotSeq = st.snapSeq
		rep.SnapshotName = filepath.Base(st.snapPath)
		buf, err := readFile(fsys, st.snapPath)
		if err != nil {
			return nil, err
		}
		rep.SnapshotBytes = int64(len(buf))
	}

	var seqs []uint64
	for seq := range st.segs {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })

	var replayed []uint64
	for _, seq := range seqs {
		buf, err := readFile(fsys, st.segs[seq])
		if err != nil {
			return nil, err
		}
		//lint:ignore no-dropped-error scanFrames only returns an error from the fn callback, which is nil here
		validLen, frames, status, _ := scanFrames(buf, nil)
		sr := SegmentReport{
			Seq:        seq,
			Name:       filepath.Base(st.segs[seq]),
			Bytes:      int64(len(buf)),
			Frames:     frames,
			ValidBytes: validLen,
			Status:     status.String(),
		}
		if seq < st.snapSeq {
			sr.Status = "stale"
		} else {
			replayed = append(replayed, seq)
		}
		rep.Segments = append(rep.Segments, sr)
	}

	// Recoverability verdict over the replayed run, mirroring recover().
	setErr := func(format string, args ...any) {
		if rep.Err == "" {
			rep.Err = fmt.Sprintf(format, args...)
		}
	}
	if len(replayed) > 0 {
		first := uint64(1)
		if st.snapSeq > 0 {
			first = st.snapSeq
		}
		if replayed[0] != first {
			setErr("first segment after snapshot should be %d, found %d", first, replayed[0])
		}
	}
	for i := 1; i < len(replayed); i++ {
		if replayed[i] != replayed[i-1]+1 {
			setErr("segment %d missing", replayed[i-1]+1)
		}
	}
	for i, seq := range replayed {
		var sr *SegmentReport
		for k := range rep.Segments {
			if rep.Segments[k].Seq == seq {
				sr = &rep.Segments[k]
			}
		}
		final := i == len(replayed)-1
		switch sr.Status {
		case "clean":
		case "torn":
			if !final {
				setErr("segment %s torn at offset %d but later segments exist", sr.Name, sr.ValidBytes)
				continue
			}
			rep.TruncatedBytes += sr.Bytes - sr.ValidBytes
		default:
			setErr("segment %s has a bad frame at offset %d followed by data", sr.Name, sr.ValidBytes)
			continue
		}
		rep.RecoverableFrames += sr.Frames
	}
	return rep, nil
}

// Write renders the report as the text table nimbus-cli prints.
func (r *Report) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "journal %s\n", r.Dir); err != nil {
		return err
	}
	if r.HasSnapshot {
		if _, err := fmt.Fprintf(w, "snapshot  %s (seq %d, %d bytes)\n", r.SnapshotName, r.SnapshotSeq, r.SnapshotBytes); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintln(w, "snapshot  (none)"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-26s %6s %10s %8s %10s  %s\n", "SEGMENT", "SEQ", "BYTES", "FRAMES", "VALID", "STATUS"); err != nil {
		return err
	}
	for _, s := range r.Segments {
		if _, err := fmt.Fprintf(w, "%-26s %6d %10d %8d %10d  %s\n", s.Name, s.Seq, s.Bytes, s.Frames, s.ValidBytes, s.Status); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "recoverable frames: %d (torn tail drops %d bytes)\n", r.RecoverableFrames, r.TruncatedBytes); err != nil {
		return err
	}
	if r.Err != "" {
		if _, err := fmt.Fprintf(w, "UNRECOVERABLE: %s\n", r.Err); err != nil {
			return err
		}
	}
	return nil
}
