// Package journal is a stdlib-only append-only write-ahead journal for
// the broker's sale ledger — the marketplace's only irreplaceable state.
// Datasets and trained models are relisted from source on restart; the
// record of who bought what at which price is not reproducible, so it
// must survive kill -9.
//
// On disk a journal directory holds at most one snapshot plus a run of
// segment files:
//
//	snap-%016x.snap   full state at a point in time, written atomically
//	seg-%016x.wal     CRC32C-framed records appended since then
//
// Records are length-prefixed, checksummed frames (see frame.go).
// Segments rotate at Options.SegmentBytes; the snapshot's sequence number
// N means "this snapshot folds in every record of every segment with
// sequence < N", so recovery loads the newest snapshot and replays the
// segments at or above its sequence, in order.
//
// Recovery tolerates exactly the damage a crash can cause: a torn final
// write in the final segment is truncated away, while a bad frame with
// valid data after it — damage to records that were once durable — makes
// recovery refuse rather than silently drop sales (ErrCorrupt).
//
// Durability is configurable per deployment via SyncPolicy: fsync every
// append (no completed sale is ever lost), group commit (the same
// guarantee, with concurrent appenders sharing one frame write and one
// fsync), fsync on an interval (bounded loss window, near-zero fsync
// amplification), or leave flushing to the OS (benchmarks).
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nimbus/internal/telemetry"
)

// SyncPolicy selects when appends are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a sale acknowledged to the
	// buyer is on stable storage before the response leaves the broker.
	// Costs one disk flush per sale.
	SyncAlways SyncPolicy = iota
	// SyncInterval marks appends dirty and fsyncs at most once per
	// Options.SyncEvery (plus at rotation, compaction and Close). A crash
	// loses at most the final window of sales; the disk sees a bounded
	// flush rate regardless of traffic.
	SyncInterval
	// SyncNever leaves flushing entirely to the OS page cache. Only the
	// process dying is survivable, not the machine; meant for benchmarks
	// and tests.
	SyncNever
	// SyncGroup is group commit: every append is acknowledged only after
	// an fsync covering its record returns — SyncAlways durability — but
	// concurrent appenders batch into a single frame-buffer write and a
	// single fsync, so the flush rate is one per batch, not one per
	// record. An uncontended append degrades to exactly the SyncAlways
	// path (a batch of one).
	SyncGroup
)

// ParseSyncPolicy maps the CLI spellings onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	case "group":
		return SyncGroup, nil
	}
	return 0, fmt.Errorf("journal: unknown sync policy %q (want always, group, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncGroup:
		return "group"
	default:
		return "never"
	}
}

// Defaults for Options zero values.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultSyncEvery    = 100 * time.Millisecond
)

// Options configures a journal. The zero value is usable: OS filesystem,
// 4 MiB segments, fsync on every append.
type Options struct {
	// SegmentBytes is the rotation threshold: a segment that reaches this
	// many bytes is sealed and a fresh one started.
	SegmentBytes int64
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// SyncEvery is the flush interval under SyncInterval.
	SyncEvery time.Duration
	// FS overrides the filesystem, for fault injection. Nil means OSFS.
	FS FS
	// Telemetry, when non-nil, receives the journal's metrics:
	// append latency/count/bytes, fsyncs, rotations, compactions, and
	// the recovery counters (replayable records, truncated tail bytes).
	Telemetry *telemetry.Registry
}

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// ErrCorrupt marks unrecoverable journal damage: a bad frame in the
// middle of the record stream (not a torn tail), or a missing segment.
// Wrapped errors carry the segment and offset.
var ErrCorrupt = errors.New("journal: corrupt")

// Journal is an open write-ahead journal. It is safe for concurrent use;
// appends are serialized, so record order on disk is the order Append
// calls returned.
type Journal struct {
	dir  string
	opts Options
	fs   FS

	mu       sync.Mutex
	tail     File   // guarded by mu
	tailSeq  uint64 // guarded by mu
	tailSize int64  // guarded by mu
	dirty    bool   // guarded by mu; bytes written since the last fsync
	armed    bool   // guarded by mu; an interval flush countdown is pending
	failed   error  // guarded by mu; sticky: a failed write/sync poisons the journal until reopen
	closed   bool   // guarded by mu
	buf      []byte // guarded by mu; frame scratch, reused across appends

	// group is the SyncGroup batching seam; it has its own lock so a
	// batch can accumulate arrivals while the previous batch's leader is
	// inside the fsync under mu.
	group groupState

	// flushc arms the interval flush countdown: the first append to dirty
	// the tail sends one token, and syncLoop flushes SyncEvery later — the
	// durability window is anchored to the append itself, and an idle
	// journal costs no timer wakeups.
	flushc chan struct{}

	// Recovery state captured at Open, consumed by Snapshot/Replay.
	replay   []segmentInfo
	snapSeq  uint64
	snapPath string

	done chan struct{} // stops the interval sync loop
	wg   sync.WaitGroup

	tel journalTelemetry
}

// segmentInfo is one segment as found at Open: its valid byte length is
// pinned so Replay sees exactly the recovered prefix even if appends have
// extended the file since.
type segmentInfo struct {
	seq    uint64
	path   string
	size   int64
	frames int
}

// journalTelemetry bundles the metric handles; all are nil-safe.
type journalTelemetry struct {
	appendLatency  *telemetry.Histogram
	appends        *telemetry.Counter
	appendBytes    *telemetry.Counter
	fsyncs         *telemetry.Counter
	rotations      *telemetry.Counter
	compactions    *telemetry.Counter
	recoveredRecs  *telemetry.Counter
	truncatedBytes *telemetry.Counter
	segments       *telemetry.Gauge
	groupCommits   *telemetry.Counter
	groupBatchRecs *telemetry.Histogram
}

func (j *Journal) initTelemetry(reg *telemetry.Registry) {
	reg.Help("nimbus_journal_append_seconds", "Latency of one journal append, including fsync under the always policy.")
	reg.Help("nimbus_journal_appends_total", "Records appended to the journal.")
	reg.Help("nimbus_journal_append_bytes_total", "Payload bytes appended to the journal.")
	reg.Help("nimbus_journal_fsyncs_total", "fsync calls issued by the journal.")
	reg.Help("nimbus_journal_rotations_total", "Segment rotations.")
	reg.Help("nimbus_journal_compactions_total", "Snapshot compactions.")
	reg.Help("nimbus_journal_recovered_records_total", "Records replayed from the journal at startup.")
	reg.Help("nimbus_journal_recovered_truncated_bytes_total", "Torn-tail bytes truncated during recovery.")
	reg.Help("nimbus_journal_segments", "Segment files currently on disk.")
	reg.Help("nimbus_journal_group_commits_total", "Group-commit batches flushed under the group sync policy.")
	reg.Help("nimbus_journal_group_batch_records", "Records per group-commit batch.")
	j.tel = journalTelemetry{
		appendLatency:  reg.Histogram("nimbus_journal_append_seconds", nil),
		appends:        reg.Counter("nimbus_journal_appends_total"),
		appendBytes:    reg.Counter("nimbus_journal_append_bytes_total"),
		fsyncs:         reg.Counter("nimbus_journal_fsyncs_total"),
		rotations:      reg.Counter("nimbus_journal_rotations_total"),
		compactions:    reg.Counter("nimbus_journal_compactions_total"),
		recoveredRecs:  reg.Counter("nimbus_journal_recovered_records_total"),
		truncatedBytes: reg.Counter("nimbus_journal_recovered_truncated_bytes_total"),
		segments:       reg.Gauge("nimbus_journal_segments"),
		groupCommits:   reg.Counter("nimbus_journal_group_commits_total"),
		groupBatchRecs: reg.Histogram("nimbus_journal_group_batch_records", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
	}
}

// Open recovers the journal in dir (creating it if needed) and readies it
// for appends: it locates the newest snapshot, validates the segment tail
// after it, truncates a torn final write, and opens the last segment for
// appending. Damage that cannot be attributed to a torn tail returns
// ErrCorrupt. After Open, read the recovered state via Snapshot and
// Replay, then Append away.
//
//lint:owns the journal holds an open segment file (and under SyncInterval a flusher goroutine); the caller must Close it on every path
func Open(dir string, opts Options) (*Journal, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	j := &Journal{dir: dir, opts: opts, fs: opts.FS}
	j.group.cond = sync.NewCond(&j.group.mu)
	j.initTelemetry(opts.Telemetry)
	if err := j.recover(); err != nil {
		return nil, err
	}
	// No other goroutine can reach j yet, but openTail and segmentsOnDisk
	// touch mu-guarded tail state, so honor the contract anyway — it keeps
	// the locking story uniform and costs one uncontended lock at startup.
	j.mu.Lock()
	err := j.openTail()
	if err == nil {
		j.tel.segments.Set(float64(j.segmentsOnDisk()))
	}
	j.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		j.done = make(chan struct{})
		j.flushc = make(chan struct{}, 1)
		j.wg.Add(1)
		go j.syncLoop()
	}
	return j, nil
}

// segmentsOnDisk counts the recovered segments plus the tail, without
// double-counting when the tail is a recovered segment.
//
//lint:holds mu
func (j *Journal) segmentsOnDisk() int {
	n := len(j.replay)
	if n == 0 || j.replay[n-1].seq != j.tailSeq {
		n++
	}
	return n
}

// checkRecord validates one record against the append preconditions.
func checkRecord(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("journal: empty record")
	}
	if int64(len(rec)) > MaxRecordSize {
		//lint:allocok refusal path: the record is being rejected, not written
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecordSize", len(rec))
	}
	return nil
}

// Append writes one record, making it durable according to the sync
// policy, and returns once the record is on the tail segment. Appends are
// atomic with respect to recovery: a crash mid-append loses at most this
// record, never an earlier one.
//
//lint:hotpath write-ahead step of every durable sale
func (j *Journal) Append(rec []byte) error {
	if err := checkRecord(rec); err != nil {
		return err
	}
	start := time.Now()
	var err error
	if j.opts.Sync == SyncGroup {
		//lint:allocok one-element view; groupCommit copies the element out, so escape analysis keeps it on this stack
		err = j.groupCommit([][]byte{rec})
	} else {
		j.mu.Lock()
		//lint:allocok one-element view; writeLocked only ranges over it, so escape analysis keeps it on this stack
		err = j.writeLocked([][]byte{rec}, j.opts.Sync == SyncAlways)
		j.mu.Unlock()
	}
	if err != nil {
		return err
	}
	j.tel.appendLatency.Observe(time.Since(start).Seconds())
	return nil
}

// AppendMany writes a run of records as one frame-buffer write, making
// them durable according to the sync policy before returning. The batch
// is atomic against failure: if the write cannot complete, the tail is
// truncated back so none of the batch's frames remain on disk (a torn
// tail a crash leaves behind is still recovered to a prefix of the
// batch). Under SyncGroup the whole run joins the in-flight batch as a
// unit, preserving its internal order.
//
//lint:hotpath batched write-ahead step of the group-commit path
func (j *Journal) AppendMany(recs [][]byte) error {
	if len(recs) == 0 {
		return nil
	}
	for _, rec := range recs {
		if err := checkRecord(rec); err != nil {
			return err
		}
	}
	start := time.Now()
	var err error
	if j.opts.Sync == SyncGroup {
		err = j.groupCommit(recs)
	} else {
		j.mu.Lock()
		err = j.writeLocked(recs, j.opts.Sync == SyncAlways)
		j.mu.Unlock()
	}
	if err != nil {
		return err
	}
	j.tel.appendLatency.Observe(time.Since(start).Seconds())
	return nil
}

// writeLocked frames recs into one buffer, writes it to the tail in a
// single call, optionally fsyncs, and rotates a full segment. It is the
// shared core of every append path. Caller holds j.mu.
//
//lint:holds mu
func (j *Journal) writeLocked(recs [][]byte, fsync bool) error {
	if j.closed {
		return ErrClosed
	}
	if j.failed != nil {
		//lint:allocok refusal path: the journal is poisoned and the append is rejected
		return fmt.Errorf("journal: poisoned by earlier failure: %w", j.failed)
	}
	j.buf = j.buf[:0]
	var payload int
	for _, rec := range recs {
		j.buf = appendFrame(j.buf, rec)
		payload += len(rec)
	}
	if _, err := j.tail.Write(j.buf); err != nil {
		// The write may have landed partially, leaving a torn frame in
		// the middle of a live file. Try to cut the whole batch back off;
		// if that also fails, poison the journal — appending after a torn
		// frame would manufacture exactly the mid-stream corruption
		// recovery refuses.
		if terr := j.tail.Truncate(j.tailSize); terr != nil {
			//lint:allocok failure path: the write already failed
			j.failed = fmt.Errorf("append failed (%v) and truncate-back failed (%v)", err, terr)
		}
		//lint:allocok failure path: the write already failed
		return fmt.Errorf("journal: append: %w", err)
	}
	j.tailSize += int64(len(j.buf))
	j.dirty = true
	if fsync {
		if err := j.tail.Sync(); err != nil {
			//lint:allocok failure path: the fsync already failed
			j.failed = fmt.Errorf("fsync failed: %w", err)
			//lint:allocok failure path: the fsync already failed
			return fmt.Errorf("journal: append fsync: %w", err)
		}
		j.dirty = false
		j.tel.fsyncs.Inc()
	} else if j.opts.Sync == SyncInterval {
		j.armFlushLocked()
	}
	if j.tailSize >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			// The records themselves are safely in the sealed segment;
			// only the rotation failed. Poison so the operator finds out.
			j.failed = err
			//lint:allocok failure path: the rotation already failed
			return fmt.Errorf("journal: rotating segment: %w", err)
		}
	}
	j.tel.appends.Add(uint64(len(recs)))
	j.tel.appendBytes.Add(uint64(payload))
	return nil
}

// groupState is the SyncGroup batching seam. Arrivals append their
// records to the current batch; the first arrival with no flush in
// flight becomes the batch's leader, steals it, and performs one
// writeLocked(fsync) for everyone. Waiters are woken when their batch's
// flush completes and a new leader self-promotes from the next batch, so
// no background goroutine is needed and an abandoned batch cannot exist
// (every batch contains at least the caller that created it).
type groupState struct {
	mu       sync.Mutex
	cond     *sync.Cond  // signals flush completion; waiters re-check their batch
	cur      *groupBatch // guarded by mu; the batch accumulating arrivals
	flushing bool        // guarded by mu; a leader is inside write+fsync
}

// groupBatch is one group-commit unit. Its fields are owned by the
// groupState lock until the batch is stolen by its leader; recs is then
// read only by that leader.
type groupBatch struct {
	recs [][]byte
	done bool
	err  error
}

// groupCommit appends recs to the forming batch and returns once a
// flush covering them has completed — the caller's records are on stable
// storage when this returns nil, exactly the SyncAlways guarantee.
func (j *Journal) groupCommit(recs [][]byte) error {
	g := &j.group
	g.mu.Lock()
	if g.cur == nil {
		//lint:allocok one batch header per group-commit window, amortized over every record in the batch
		g.cur = &groupBatch{}
	}
	b := g.cur
	//lint:allocok batch slice grows toward the window's size; the doubling amortizes across the batch
	b.recs = append(b.recs, recs...)
	for g.flushing && !b.done {
		g.cond.Wait()
	}
	if b.done {
		// Another caller led our batch while we waited; its verdict is ours.
		err := b.err
		g.mu.Unlock()
		return err
	}
	// No flush in flight and our batch not yet flushed: lead it. New
	// arrivals start the next batch and wait for us to finish.
	g.flushing = true
	g.cur = nil
	g.mu.Unlock()

	j.mu.Lock()
	err := j.writeLocked(b.recs, true)
	j.mu.Unlock()
	j.tel.groupCommits.Inc()
	j.tel.groupBatchRecs.Observe(float64(len(b.recs)))

	g.mu.Lock()
	b.done, b.err = true, err
	g.flushing = false
	g.cond.Broadcast()
	g.mu.Unlock()
	return err
}

// armFlushLocked starts one SyncEvery countdown if none is pending, so
// dirty bytes are flushed at most SyncEvery after the append that first
// dirtied the tail. Caller holds j.mu.
//
//lint:holds mu
func (j *Journal) armFlushLocked() {
	if j.armed || j.flushc == nil {
		return
	}
	j.armed = true
	select {
	case j.flushc <- struct{}{}:
	default:
	}
}

// rotateLocked seals the tail segment (fsync + close) and starts the next
// one. Caller holds j.mu.
//
//lint:holds mu
func (j *Journal) rotateLocked() error {
	if err := j.tail.Sync(); err != nil {
		//lint:allocok failure path: the seal fsync already failed
		return fmt.Errorf("sealing segment %d: %w", j.tailSeq, err)
	}
	j.tel.fsyncs.Inc()
	j.dirty = false
	if err := j.tail.Close(); err != nil {
		//lint:allocok failure path: the close already failed
		return fmt.Errorf("closing segment %d: %w", j.tailSeq, err)
	}
	f, err := j.createSegment(j.tailSeq + 1)
	if err != nil {
		return err
	}
	j.tail = f
	j.tailSeq++
	j.tailSize = 0
	j.tel.rotations.Inc()
	j.tel.segments.Add(1)
	return nil
}

// createSegment creates the segment file for seq and makes its directory
// entry durable.
func (j *Journal) createSegment(seq uint64) (File, error) {
	path := filepath.Join(j.dir, segName(seq))
	f, err := j.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		//lint:allocok failure path: the segment create already failed
		return nil, fmt.Errorf("creating segment %d: %w", seq, err)
	}
	if err := j.fs.SyncDir(j.dir); err != nil {
		//lint:ignore no-dropped-error best-effort cleanup; the directory-sync failure is what gets reported
		f.Close()
		//lint:allocok failure path: the directory sync already failed
		return nil, fmt.Errorf("syncing journal directory: %w", err)
	}
	return f, nil
}

// Sync forces dirty appends to stable storage regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

// syncLocked flushes dirty appends. Caller holds j.mu.
//
//lint:holds mu
func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := j.tail.Sync(); err != nil {
		j.failed = fmt.Errorf("fsync failed: %w", err)
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.dirty = false
	j.tel.fsyncs.Inc()
	return nil
}

// syncLoop drives the interval policy. The countdown is armed by the
// first append that dirties a clean tail (armFlushLocked sends one
// flushc token) and fires SyncEvery later, so the durability window is
// anchored to the append itself: a burst followed by idleness is flushed
// at most SyncEvery after its first record, and an idle journal costs no
// timer wakeups at all. A free-running ticker would instead let dirty
// bytes written just after a tick sit for up to a full extra period, and
// kept waking an idle process.
func (j *Journal) syncLoop() {
	defer j.wg.Done()
	t := time.NewTimer(j.opts.SyncEvery)
	if !t.Stop() {
		<-t.C
	}
	defer t.Stop()
	for {
		select {
		case <-j.done:
			return
		case <-j.flushc:
			t.Reset(j.opts.SyncEvery)
		case <-t.C:
			j.mu.Lock()
			j.armed = false
			if !j.closed {
				// syncLocked records a failure in j.failed, which the
				// next Append reports; the loop itself has no caller to
				// tell.
				if err := j.syncLocked(); err != nil {
					j.mu.Unlock()
					return
				}
			}
			j.mu.Unlock()
		}
	}
}

// Close flushes and closes the tail segment. Further operations return
// ErrClosed. Close is idempotent.
func (j *Journal) Close() error {
	// Manual unlock: the lock must be released before wg.Wait, or a
	// concurrent syncLoop tick blocked on j.mu could never observe closed
	// and exit.
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	done := j.done
	j.mu.Unlock()
	if done != nil {
		close(done)
		j.wg.Wait()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.dirty && j.failed == nil {
		if serr := j.tail.Sync(); serr != nil {
			err = fmt.Errorf("journal: closing flush: %w", serr)
		} else {
			j.dirty = false
			j.tel.fsyncs.Inc()
		}
	}
	if cerr := j.tail.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("journal: closing segment: %w", cerr)
	}
	return err
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// segName and snapName are the on-disk naming scheme; sequence numbers
// are zero-padded hex so lexical order is numeric order.
//lint:allocok one name per segment rotation, SegmentBytes apart
func segName(seq uint64) string  { return fmt.Sprintf("seg-%016x.wal", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }
