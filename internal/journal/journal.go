// Package journal is a stdlib-only append-only write-ahead journal for
// the broker's sale ledger — the marketplace's only irreplaceable state.
// Datasets and trained models are relisted from source on restart; the
// record of who bought what at which price is not reproducible, so it
// must survive kill -9.
//
// On disk a journal directory holds at most one snapshot plus a run of
// segment files:
//
//	snap-%016x.snap   full state at a point in time, written atomically
//	seg-%016x.wal     CRC32C-framed records appended since then
//
// Records are length-prefixed, checksummed frames (see frame.go).
// Segments rotate at Options.SegmentBytes; the snapshot's sequence number
// N means "this snapshot folds in every record of every segment with
// sequence < N", so recovery loads the newest snapshot and replays the
// segments at or above its sequence, in order.
//
// Recovery tolerates exactly the damage a crash can cause: a torn final
// write in the final segment is truncated away, while a bad frame with
// valid data after it — damage to records that were once durable — makes
// recovery refuse rather than silently drop sales (ErrCorrupt).
//
// Durability is configurable per deployment via SyncPolicy: fsync every
// append (no completed sale is ever lost), fsync on an interval (bounded
// loss window, near-zero fsync amplification), or leave flushing to the
// OS (benchmarks).
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nimbus/internal/telemetry"
)

// SyncPolicy selects when appends are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a sale acknowledged to the
	// buyer is on stable storage before the response leaves the broker.
	// Costs one disk flush per sale.
	SyncAlways SyncPolicy = iota
	// SyncInterval marks appends dirty and fsyncs at most once per
	// Options.SyncEvery (plus at rotation, compaction and Close). A crash
	// loses at most the final window of sales; the disk sees a bounded
	// flush rate regardless of traffic.
	SyncInterval
	// SyncNever leaves flushing entirely to the OS page cache. Only the
	// process dying is survivable, not the machine; meant for benchmarks
	// and tests.
	SyncNever
)

// ParseSyncPolicy maps the CLI spellings onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown sync policy %q (want always, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// Defaults for Options zero values.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultSyncEvery    = 100 * time.Millisecond
)

// Options configures a journal. The zero value is usable: OS filesystem,
// 4 MiB segments, fsync on every append.
type Options struct {
	// SegmentBytes is the rotation threshold: a segment that reaches this
	// many bytes is sealed and a fresh one started.
	SegmentBytes int64
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// SyncEvery is the flush interval under SyncInterval.
	SyncEvery time.Duration
	// FS overrides the filesystem, for fault injection. Nil means OSFS.
	FS FS
	// Telemetry, when non-nil, receives the journal's metrics:
	// append latency/count/bytes, fsyncs, rotations, compactions, and
	// the recovery counters (replayable records, truncated tail bytes).
	Telemetry *telemetry.Registry
}

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// ErrCorrupt marks unrecoverable journal damage: a bad frame in the
// middle of the record stream (not a torn tail), or a missing segment.
// Wrapped errors carry the segment and offset.
var ErrCorrupt = errors.New("journal: corrupt")

// Journal is an open write-ahead journal. It is safe for concurrent use;
// appends are serialized, so record order on disk is the order Append
// calls returned.
type Journal struct {
	dir  string
	opts Options
	fs   FS

	mu       sync.Mutex
	tail     File   // guarded by mu
	tailSeq  uint64 // guarded by mu
	tailSize int64  // guarded by mu
	dirty    bool   // guarded by mu; bytes written since the last fsync
	failed   error  // guarded by mu; sticky: a failed write/sync poisons the journal until reopen
	closed   bool   // guarded by mu
	buf      []byte // guarded by mu; frame scratch, reused across appends

	// Recovery state captured at Open, consumed by Snapshot/Replay.
	replay   []segmentInfo
	snapSeq  uint64
	snapPath string

	done chan struct{} // stops the interval sync loop
	wg   sync.WaitGroup

	tel journalTelemetry
}

// segmentInfo is one segment as found at Open: its valid byte length is
// pinned so Replay sees exactly the recovered prefix even if appends have
// extended the file since.
type segmentInfo struct {
	seq    uint64
	path   string
	size   int64
	frames int
}

// journalTelemetry bundles the metric handles; all are nil-safe.
type journalTelemetry struct {
	appendLatency  *telemetry.Histogram
	appends        *telemetry.Counter
	appendBytes    *telemetry.Counter
	fsyncs         *telemetry.Counter
	rotations      *telemetry.Counter
	compactions    *telemetry.Counter
	recoveredRecs  *telemetry.Counter
	truncatedBytes *telemetry.Counter
	segments       *telemetry.Gauge
}

func (j *Journal) initTelemetry(reg *telemetry.Registry) {
	reg.Help("nimbus_journal_append_seconds", "Latency of one journal append, including fsync under the always policy.")
	reg.Help("nimbus_journal_appends_total", "Records appended to the journal.")
	reg.Help("nimbus_journal_append_bytes_total", "Payload bytes appended to the journal.")
	reg.Help("nimbus_journal_fsyncs_total", "fsync calls issued by the journal.")
	reg.Help("nimbus_journal_rotations_total", "Segment rotations.")
	reg.Help("nimbus_journal_compactions_total", "Snapshot compactions.")
	reg.Help("nimbus_journal_recovered_records_total", "Records replayed from the journal at startup.")
	reg.Help("nimbus_journal_recovered_truncated_bytes_total", "Torn-tail bytes truncated during recovery.")
	reg.Help("nimbus_journal_segments", "Segment files currently on disk.")
	j.tel = journalTelemetry{
		appendLatency:  reg.Histogram("nimbus_journal_append_seconds", nil),
		appends:        reg.Counter("nimbus_journal_appends_total"),
		appendBytes:    reg.Counter("nimbus_journal_append_bytes_total"),
		fsyncs:         reg.Counter("nimbus_journal_fsyncs_total"),
		rotations:      reg.Counter("nimbus_journal_rotations_total"),
		compactions:    reg.Counter("nimbus_journal_compactions_total"),
		recoveredRecs:  reg.Counter("nimbus_journal_recovered_records_total"),
		truncatedBytes: reg.Counter("nimbus_journal_recovered_truncated_bytes_total"),
		segments:       reg.Gauge("nimbus_journal_segments"),
	}
}

// Open recovers the journal in dir (creating it if needed) and readies it
// for appends: it locates the newest snapshot, validates the segment tail
// after it, truncates a torn final write, and opens the last segment for
// appending. Damage that cannot be attributed to a torn tail returns
// ErrCorrupt. After Open, read the recovered state via Snapshot and
// Replay, then Append away.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	j := &Journal{dir: dir, opts: opts, fs: opts.FS}
	j.initTelemetry(opts.Telemetry)
	if err := j.recover(); err != nil {
		return nil, err
	}
	// No other goroutine can reach j yet, but openTail and segmentsOnDisk
	// touch mu-guarded tail state, so honor the contract anyway — it keeps
	// the locking story uniform and costs one uncontended lock at startup.
	j.mu.Lock()
	err := j.openTail()
	if err == nil {
		j.tel.segments.Set(float64(j.segmentsOnDisk()))
	}
	j.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		j.done = make(chan struct{})
		j.wg.Add(1)
		go j.syncLoop()
	}
	return j, nil
}

// segmentsOnDisk counts the recovered segments plus the tail, without
// double-counting when the tail is a recovered segment.
//
//lint:holds mu
func (j *Journal) segmentsOnDisk() int {
	n := len(j.replay)
	if n == 0 || j.replay[n-1].seq != j.tailSeq {
		n++
	}
	return n
}

// Append writes one record, making it durable according to the sync
// policy, and returns once the record is on the tail segment. Appends are
// atomic with respect to recovery: a crash mid-append loses at most this
// record, never an earlier one.
func (j *Journal) Append(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("journal: empty record")
	}
	if int64(len(rec)) > MaxRecordSize {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecordSize", len(rec))
	}
	start := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.failed != nil {
		return fmt.Errorf("journal: poisoned by earlier failure: %w", j.failed)
	}
	j.buf = appendFrame(j.buf[:0], rec)
	if _, err := j.tail.Write(j.buf); err != nil {
		// The write may have landed partially, leaving a torn frame in
		// the middle of a live file. Try to cut it back off; if that also
		// fails, poison the journal — appending after a torn frame would
		// manufacture exactly the mid-stream corruption recovery refuses.
		if terr := j.tail.Truncate(j.tailSize); terr != nil {
			j.failed = fmt.Errorf("append failed (%v) and truncate-back failed (%v)", err, terr)
		}
		return fmt.Errorf("journal: append: %w", err)
	}
	j.tailSize += int64(len(j.buf))
	j.dirty = true
	if j.opts.Sync == SyncAlways {
		if err := j.tail.Sync(); err != nil {
			j.failed = fmt.Errorf("fsync failed: %w", err)
			return fmt.Errorf("journal: append fsync: %w", err)
		}
		j.dirty = false
		j.tel.fsyncs.Inc()
	}
	if j.tailSize >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			// The record itself is safely in the sealed segment; only the
			// rotation failed. Poison so the operator finds out.
			j.failed = err
			return fmt.Errorf("journal: rotating segment: %w", err)
		}
	}
	j.tel.appends.Inc()
	j.tel.appendBytes.Add(uint64(len(rec)))
	j.tel.appendLatency.Observe(time.Since(start).Seconds())
	return nil
}

// rotateLocked seals the tail segment (fsync + close) and starts the next
// one. Caller holds j.mu.
//
//lint:holds mu
func (j *Journal) rotateLocked() error {
	if err := j.tail.Sync(); err != nil {
		return fmt.Errorf("sealing segment %d: %w", j.tailSeq, err)
	}
	j.tel.fsyncs.Inc()
	j.dirty = false
	if err := j.tail.Close(); err != nil {
		return fmt.Errorf("closing segment %d: %w", j.tailSeq, err)
	}
	f, err := j.createSegment(j.tailSeq + 1)
	if err != nil {
		return err
	}
	j.tail = f
	j.tailSeq++
	j.tailSize = 0
	j.tel.rotations.Inc()
	j.tel.segments.Add(1)
	return nil
}

// createSegment creates the segment file for seq and makes its directory
// entry durable.
func (j *Journal) createSegment(seq uint64) (File, error) {
	path := filepath.Join(j.dir, segName(seq))
	f, err := j.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("creating segment %d: %w", seq, err)
	}
	if err := j.fs.SyncDir(j.dir); err != nil {
		//lint:ignore no-dropped-error best-effort cleanup; the directory-sync failure is what gets reported
		f.Close()
		return nil, fmt.Errorf("syncing journal directory: %w", err)
	}
	return f, nil
}

// Sync forces dirty appends to stable storage regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

// syncLocked flushes dirty appends. Caller holds j.mu.
//
//lint:holds mu
func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := j.tail.Sync(); err != nil {
		j.failed = fmt.Errorf("fsync failed: %w", err)
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.dirty = false
	j.tel.fsyncs.Inc()
	return nil
}

// syncLoop drives the interval policy: flush dirty appends once per tick.
func (j *Journal) syncLoop() {
	defer j.wg.Done()
	t := time.NewTicker(j.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.done:
			return
		case <-t.C:
			j.mu.Lock()
			if !j.closed {
				// syncLocked records a failure in j.failed, which the
				// next Append reports; the loop itself has no caller to
				// tell.
				if err := j.syncLocked(); err != nil {
					j.mu.Unlock()
					return
				}
			}
			j.mu.Unlock()
		}
	}
}

// Close flushes and closes the tail segment. Further operations return
// ErrClosed. Close is idempotent.
func (j *Journal) Close() error {
	// Manual unlock: the lock must be released before wg.Wait, or a
	// concurrent syncLoop tick blocked on j.mu could never observe closed
	// and exit.
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	done := j.done
	j.mu.Unlock()
	if done != nil {
		close(done)
		j.wg.Wait()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.dirty && j.failed == nil {
		if serr := j.tail.Sync(); serr != nil {
			err = fmt.Errorf("journal: closing flush: %w", serr)
		} else {
			j.dirty = false
			j.tel.fsyncs.Inc()
		}
	}
	if cerr := j.tail.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("journal: closing segment: %w", cerr)
	}
	return err
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// segName and snapName are the on-disk naming scheme; sequence numbers
// are zero-padded hex so lexical order is numeric order.
func segName(seq uint64) string  { return fmt.Sprintf("seg-%016x.wal", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }
