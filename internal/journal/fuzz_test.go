package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to recovery as a single-segment
// journal. Whatever the bytes, recovery must either refuse with
// ErrCorrupt or succeed; on success the replayed records must survive a
// second scan cleanly (the torn-tail repair is idempotent and physical),
// and Verify must agree with Open about how many records are
// recoverable. The seed corpus covers the crash signatures: clean
// streams, torn prefixes, zero-filled tails, and flipped bytes.
func FuzzReplay(f *testing.F) {
	var valid []byte
	for _, p := range [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("gamma")} {
		valid = appendFrame(valid, p)
	}
	f.Add([]byte{})
	f.Add(append([]byte(nil), valid...))
	// Torn-write corpora: prefixes cut mid-header and mid-payload.
	f.Add(append([]byte(nil), valid[:len(valid)-2]...))
	f.Add(append([]byte(nil), valid[:frameHeaderSize+2]...))
	f.Add(append([]byte(nil), valid[:3]...))
	// Zero-filled tail.
	f.Add(append(append([]byte(nil), valid...), make([]byte, 32)...))
	// Flipped payload byte mid-stream (corrupt) and at the end (torn).
	midFlip := append([]byte(nil), valid...)
	midFlip[frameHeaderSize+1] ^= 0xff
	f.Add(midFlip)
	endFlip := append([]byte(nil), valid...)
	endFlip[len(endFlip)-1] ^= 0xff
	f.Add(endFlip)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		preVerify, err := Verify(dir, nil)
		if err != nil {
			t.Fatalf("verify before open: %v", err)
		}

		j, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open failed with a non-classification error: %v", err)
			}
			if preVerify.Err == "" {
				t.Fatalf("Open refused (%v) but Verify said recoverable: %+v", err, preVerify)
			}
			return
		}
		if preVerify.Err != "" {
			t.Fatalf("Open recovered but Verify said unrecoverable: %s", preVerify.Err)
		}
		var n int
		if err := j.Replay(func(rec []byte) error {
			if len(rec) == 0 {
				t.Fatal("replayed an empty record")
			}
			n++
			return nil
		}); err != nil {
			t.Fatalf("replay: %v", err)
		}
		if n != preVerify.RecoverableFrames {
			t.Fatalf("replayed %d records, Verify predicted %d", n, preVerify.RecoverableFrames)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		// The repair is physical: after Open, the segment re-verifies clean.
		post, err := Verify(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		if post.Err != "" || post.TruncatedBytes != 0 || post.RecoverableFrames != n {
			t.Fatalf("post-repair verify: %+v (want clean with %d frames)", post, n)
		}
	})
}
