package journal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// dirState is what a listing of the journal directory parses into.
type dirState struct {
	snapSeq  uint64 // newest snapshot's sequence, 0 if none
	snapPath string
	// segs maps every segment sequence on disk to its path.
	segs map[uint64]string
	// staleSnaps are superseded snapshot files (older sequence).
	staleSnaps []string
}

// listDir parses the journal directory. Unknown files (including .tmp
// leftovers from an interrupted atomic write) are ignored.
func listDir(fsys FS, dir string) (*dirState, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: listing %s: %w", dir, err)
	}
	st := &dirState{segs: make(map[uint64]string)}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if seq, ok := parseSeq(name, "seg-", ".wal"); ok {
			st.segs[seq] = filepath.Join(dir, name)
			continue
		}
		if seq, ok := parseSeq(name, "snap-", ".snap"); ok {
			if seq > st.snapSeq {
				if st.snapPath != "" {
					st.staleSnaps = append(st.staleSnaps, st.snapPath)
				}
				st.snapSeq, st.snapPath = seq, filepath.Join(dir, name)
			} else {
				st.staleSnaps = append(st.staleSnaps, filepath.Join(dir, name))
			}
		}
	}
	return st, nil
}

// parseSeq extracts the hex sequence from prefix<seq>suffix names.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexpart := name[len(prefix) : len(name)-len(suffix)]
	if len(hexpart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// recover scans the directory, removes files a finished compaction made
// redundant, validates the segments newer than the snapshot, and repairs
// a torn tail. On return j.replay/j.snapSeq/j.snapPath describe the
// recovered state.
func (j *Journal) recover() error {
	st, err := listDir(j.fs, j.dir)
	if err != nil {
		return err
	}
	j.snapSeq, j.snapPath = st.snapSeq, st.snapPath

	// A crash between a compaction's snapshot rename and its removals
	// leaves covered segments and superseded snapshots behind; they are
	// redundant by construction, so finish the job.
	for _, p := range st.staleSnaps {
		if err := j.fs.Remove(p); err != nil {
			return fmt.Errorf("journal: removing stale snapshot %s: %w", p, err)
		}
	}
	var seqs []uint64
	for seq, path := range st.segs {
		if seq < st.snapSeq {
			if err := j.fs.Remove(path); err != nil {
				return fmt.Errorf("journal: removing compacted segment %s: %w", path, err)
			}
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })

	// The replayed run must be contiguous and must start where the
	// snapshot left off (sequence 1 on a snapshotless journal): a hole
	// means records that were once durable are gone, which is not a torn
	// tail.
	if len(seqs) > 0 {
		first := uint64(1)
		if st.snapSeq > 0 {
			first = st.snapSeq
		}
		if seqs[0] != first {
			return fmt.Errorf("%w: first segment after snapshot should be %d, found %d", ErrCorrupt, first, seqs[0])
		}
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			return fmt.Errorf("%w: segment %d missing (have %d then %d)", ErrCorrupt, seqs[i-1]+1, seqs[i-1], seqs[i])
		}
	}

	var recovered int
	var truncated int64
	for i, seq := range seqs {
		path := st.segs[seq]
		buf, err := readFile(j.fs, path)
		if err != nil {
			return fmt.Errorf("journal: reading segment %s: %w", path, err)
		}
		//lint:ignore no-dropped-error scanFrames only returns an error from the fn callback, which is nil here
		validLen, frames, status, _ := scanFrames(buf, nil)
		final := i == len(seqs)-1
		switch {
		case status == scanClean:
			// intact
		case status == scanTorn && final:
			// The one kind of damage a crash legitimately causes: a write
			// cut short at the very end of the log. Cut it off so appends
			// resume at a frame boundary.
			if err := j.truncateSegment(path, validLen); err != nil {
				return err
			}
			truncated += int64(len(buf)) - validLen
		case status == scanTorn:
			// A torn tail in a non-final segment means every record in the
			// segments after it postdates the damage: mid-stream corruption.
			return fmt.Errorf("%w: segment %s torn at offset %d but later segments exist", ErrCorrupt, path, validLen)
		default:
			return fmt.Errorf("%w: segment %s has a bad frame at offset %d followed by data", ErrCorrupt, path, validLen)
		}
		recovered += frames
		j.replay = append(j.replay, segmentInfo{seq: seq, path: path, size: validLen, frames: frames})
	}
	j.tel.recoveredRecs.Add(uint64(recovered))
	j.tel.truncatedBytes.Add(uint64(truncated))
	return nil
}

// truncateSegment cuts a torn tail off at size and makes the repair
// durable.
func (j *Journal) truncateSegment(path string, size int64) error {
	f, err := j.fs.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("journal: opening %s for repair: %w", path, err)
	}
	err = f.Truncate(size)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
	}
	return nil
}

// openTail positions the journal for appending: the last recovered
// segment if it has room, otherwise a fresh one. Caller holds j.mu.
//
//lint:holds mu
func (j *Journal) openTail() error {
	if n := len(j.replay); n > 0 {
		last := j.replay[n-1]
		if last.size < j.opts.SegmentBytes {
			f, err := j.fs.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return fmt.Errorf("journal: opening tail segment: %w", err)
			}
			j.tail, j.tailSeq, j.tailSize = f, last.seq, last.size
			return nil
		}
		f, err := j.createSegment(last.seq + 1)
		if err != nil {
			return err
		}
		j.tail, j.tailSeq, j.tailSize = f, last.seq+1, 0
		return nil
	}
	// Empty journal (or everything folded into the snapshot): start at
	// the snapshot's sequence, or 1 on a fresh directory.
	seq := j.snapSeq
	if seq == 0 {
		seq = 1
	}
	f, err := j.createSegment(seq)
	if err != nil {
		return err
	}
	j.tail, j.tailSeq, j.tailSize = f, seq, 0
	return nil
}

// Snapshot returns a reader over the newest snapshot's contents, or
// ok=false when the journal has none. The caller closes it.
func (j *Journal) Snapshot() (rc io.ReadCloser, ok bool, err error) {
	if j.snapPath == "" {
		return nil, false, nil
	}
	f, err := j.fs.OpenFile(j.snapPath, os.O_RDONLY, 0)
	if err != nil {
		return nil, false, fmt.Errorf("journal: opening snapshot: %w", err)
	}
	return f, true, nil
}

// Replay streams every record that survived recovery, oldest first, to
// fn; a non-nil error from fn aborts the replay. Call it once after Open
// (and after applying Snapshot), before appending: records appended after
// Open are not replayed.
func (j *Journal) Replay(fn func(rec []byte) error) error {
	for _, seg := range j.replay {
		buf, err := readFile(j.fs, seg.path)
		if err != nil {
			return fmt.Errorf("journal: replaying %s: %w", seg.path, err)
		}
		if int64(len(buf)) > seg.size {
			buf = buf[:seg.size]
		}
		if _, _, _, err := scanFrames(buf, fn); err != nil {
			return err
		}
	}
	return nil
}
