package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nimbus/internal/telemetry"
)

// appendAll appends each record, failing the test on error.
func appendAll(t *testing.T, j *Journal, recs [][]byte) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

// replayAll collects every replayed record.
func replayAll(t *testing.T, j *Journal) [][]byte {
	t.Helper()
	var got [][]byte
	if err := j.Replay(func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func records(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("record-%04d-%s", i, string(make([]byte, i%7))))
	}
	return recs
}

func equalRecords(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			return false
		}
	}
	return true
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := records(10)
	j, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := j.Snapshot(); ok || err != nil {
		t.Fatalf("fresh journal has snapshot (%v, %v)", ok, err)
	}
	appendAll(t, j, recs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent; appends after Close refuse.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}

	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := replayAll(t, j2); !equalRecords(got, recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
}

func TestAppendValidation(t *testing.T) {
	j, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
}

func TestRotationSpreadsSegments(t *testing.T) {
	dir := t.TempDir()
	recs := records(20)
	j, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, recs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}
	j2, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := replayAll(t, j2); !equalRecords(got, recs) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(recs))
	}
}

func TestReopenContinuesAppending(t *testing.T) {
	dir := t.TempDir()
	recs := records(6)
	for i := 0; i < len(recs); i += 2 {
		j, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 96})
		if err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, j); !equalRecords(got, recs[:i]) {
			t.Fatalf("generation %d: replayed %d records, want %d", i/2, len(got), i)
		}
		appendAll(t, j, recs[i:i+2])
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// stateFrom serializes replayed records as a snapshot body for compaction
// tests: one record per line.
func stateFrom(recs [][]byte) func(io.Writer) error {
	return func(w io.Writer) error {
		for _, r := range recs {
			if _, err := fmt.Fprintf(w, "%s\n", r); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestCompactionFoldsSegments(t *testing.T) {
	dir := t.TempDir()
	recs := records(12)
	j, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, recs)
	if err := j.Compact(stateFrom(recs)); err != nil {
		t.Fatal(err)
	}
	// Everything folded: one snapshot, one (empty) tail segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(segs) != 1 || len(snaps) != 1 {
		t.Fatalf("after compaction: segments %v snapshots %v", segs, snaps)
	}
	// Appends continue into the fresh tail.
	post := [][]byte{[]byte("after-compact-1"), []byte("after-compact-2")}
	appendAll(t, j, post)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rc, ok, err := j2.Snapshot()
	if err != nil || !ok {
		t.Fatalf("snapshot after compaction: ok=%v err=%v", ok, err)
	}
	body, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, r := range recs {
		want = append(want, r...)
		want = append(want, '\n')
	}
	if string(body) != string(want) {
		t.Fatalf("snapshot body %q", body)
	}
	if got := replayAll(t, j2); !equalRecords(got, post) {
		t.Fatalf("replayed %d post-compaction records, want %d", len(got), len(post))
	}
}

func TestRepeatedCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var all [][]byte
	for round := 0; round < 3; round++ {
		batch := records(5)
		appendAll(t, j, batch)
		all = append(all, batch...)
		if err := j.Compact(stateFrom(all)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := replayAll(t, j2); len(got) != 0 {
		t.Fatalf("replay after full compaction returned %d records", len(got))
	}
	if _, ok, _ := j2.Snapshot(); !ok {
		t.Fatal("snapshot missing after repeated compaction")
	}
}

func TestSyncPolicyParsing(t *testing.T) {
	for _, s := range []string{"always", "group", "interval", "never"} {
		p, err := ParseSyncPolicy(s)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != s {
			t.Fatalf("round trip %q -> %q", s, p.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestIntervalSyncFlushes(t *testing.T) {
	reg := telemetry.NewRegistry()
	j, err := Open(t.TempDir(), Options{
		Sync: SyncInterval, SyncEvery: 2 * time.Millisecond, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append([]byte("flush me")); err != nil {
		t.Fatal(err)
	}
	fsyncs := reg.Counter("nimbus_journal_fsyncs_total")
	deadline := time.Now().Add(2 * time.Second)
	for fsyncs.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval policy never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	recs := records(8)
	j, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 64, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, recs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("nimbus_journal_appends_total").Value(); got != uint64(len(recs)) {
		t.Fatalf("appends_total %d", got)
	}
	if reg.Counter("nimbus_journal_fsyncs_total").Value() == 0 {
		t.Fatal("no fsyncs counted under SyncAlways")
	}
	if reg.Counter("nimbus_journal_rotations_total").Value() == 0 {
		t.Fatal("no rotations counted")
	}
	if reg.Histogram("nimbus_journal_append_seconds", nil).Count() != uint64(len(recs)) {
		t.Fatal("append latency histogram not populated")
	}

	// Recovery counters on reopen.
	reg2 := telemetry.NewRegistry()
	j2, err := Open(dir, Options{Sync: SyncNever, Telemetry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := reg2.Counter("nimbus_journal_recovered_records_total").Value(); got != uint64(len(recs)) {
		t.Fatalf("recovered_records_total %d", got)
	}
	if reg2.Gauge("nimbus_journal_segments").Value() < 2 {
		t.Fatal("segment gauge not set")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(OSFS{}, path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failing write leaves the previous content untouched and no temp
	// file behind.
	boom := errors.New("boom")
	err := WriteFileAtomic(OSFS{}, path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "v1" {
		t.Fatalf("old content clobbered: %q", body)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file leaked")
	}
}
