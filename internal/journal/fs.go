package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// FS is the filesystem surface the journal writes through. Production
// code uses OSFS; crash-recovery tests inject implementations that fail
// or tear writes at chosen points, so every "the power went out here"
// window is exercised without actually pulling the plug.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir flushes the directory entry metadata (creates, renames,
	// removes) for dir to stable storage.
	SyncDir(dir string) error
}

// File is the subset of *os.File the journal needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }

func (OSFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	// Some filesystems refuse to fsync a directory handle; the renames
	// and creates are still ordered there, so degrade instead of failing
	// the journal.
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// readFile reads name in full through fsys.
func readFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return data, err
}

// WriteFileAtomic writes a file so a crash at any point leaves either the
// old content or the new content, never a mix: the payload goes to a
// temporary file in the same directory, is fsynced, renamed over path,
// and the directory entry is fsynced. The write callback receives the
// temporary file's writer.
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating %s: %w", tmp, err)
	}
	cleanup := func(err error) error {
		//lint:ignore no-dropped-error best-effort cleanup of the temp file; the original failure is what gets reported
		f.Close()
		//lint:ignore no-dropped-error best-effort cleanup of the temp file; the original failure is what gets reported
		fsys.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("journal: syncing %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		//lint:ignore no-dropped-error best-effort cleanup of the temp file; the close failure is what gets reported
		fsys.Remove(tmp)
		return fmt.Errorf("journal: closing %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		//lint:ignore no-dropped-error best-effort cleanup of the temp file; the rename failure is what gets reported
		fsys.Remove(tmp)
		return fmt.Errorf("journal: publishing %s: %w", path, err)
	}
	return fsys.SyncDir(filepath.Dir(path))
}
