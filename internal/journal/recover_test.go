package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// buildDir writes a journal of recs into dir with small segments and
// returns the segment files' contents in sequence order.
func buildDir(t *testing.T, dir string, recs [][]byte, segBytes int64) []string {
	t.Helper()
	j, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, recs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs) // zero-padded hex names sort numerically
	return segs
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	recs := records(5)
	segs := buildDir(t, dir, recs, DefaultSegmentBytes) // single segment
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Cut three bytes off the final frame: a torn write.
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	j, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, j)
	if !equalRecords(got, recs[:4]) {
		t.Fatalf("replayed %d records after torn tail, want 4", len(got))
	}
	// The repair is physical: the file now ends at the frame boundary.
	repaired, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Size() >= info.Size()-3 {
		t.Fatalf("torn tail not truncated: %d bytes", repaired.Size())
	}
	// And appends resume cleanly at the boundary.
	if err := j.Append([]byte("resumed")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	want := append(append([][]byte{}, recs[:4]...), []byte("resumed"))
	if got := replayAll(t, j2); !equalRecords(got, want) {
		t.Fatalf("replayed %d records after repair+append, want %d", len(got), len(want))
	}
}

func TestZeroFilledTailTruncated(t *testing.T) {
	dir := t.TempDir()
	recs := records(3)
	segs := buildDir(t, dir, recs, DefaultSegmentBytes)
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A crash can extend the file with zero pages before the frame data
	// reaches disk.
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if got := replayAll(t, j); !equalRecords(got, recs) {
		t.Fatalf("replayed %d records with zero-filled tail, want %d", len(got), len(recs))
	}
}

func TestMidStreamCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	recs := records(6)
	segs := buildDir(t, dir, recs, DefaultSegmentBytes)
	buf, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the first frame: the CRC fails and valid
	// frames follow, so this is not a torn tail.
	buf[frameHeaderSize+2] ^= 0xff
	if err := os.WriteFile(segs[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNever}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-stream corruption: %v", err)
	}
}

func TestTornNonFinalSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	recs := records(20)
	segs := buildDir(t, dir, recs, 64)
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-2); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNever}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn non-final segment: %v", err)
	}
}

func TestMissingSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	segs := buildDir(t, dir, records(20), 64)
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNever}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing segment: %v", err)
	}
}

// TestEveryPrefixRecovers is the crash-recovery property at the journal
// layer: however many bytes of the record stream survive, recovery
// succeeds and replays exactly some prefix of the appended records.
func TestEveryPrefixRecovers(t *testing.T) {
	master := t.TempDir()
	recs := records(14)
	segs := buildDir(t, master, recs, 96)
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}
	bodies := make([][]byte, len(segs))
	for i, s := range segs {
		b, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = b
	}

	prevK := -1
	for segIdx := range segs {
		for cut := 0; cut <= len(bodies[segIdx]); cut++ {
			dir := t.TempDir()
			// The crash preserved every earlier segment, a prefix of
			// segment segIdx, and nothing after it.
			for i := 0; i < segIdx; i++ {
				if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[i])), bodies[i], 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[segIdx])), bodies[segIdx][:cut], 0o644); err != nil {
				t.Fatal(err)
			}

			j, err := Open(dir, Options{Sync: SyncNever})
			if err != nil {
				t.Fatalf("seg %d cut %d: %v", segIdx, cut, err)
			}
			got := replayAll(t, j)
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if !equalRecords(got, recs[:len(got)]) {
				t.Fatalf("seg %d cut %d: recovered records are not a prefix", segIdx, cut)
			}
			// More surviving bytes never recovers fewer records.
			if len(got) < prevK {
				t.Fatalf("seg %d cut %d: recovered %d records, previously %d", segIdx, cut, len(got), prevK)
			}
			prevK = len(got)
		}
	}
	if prevK != len(recs) {
		t.Fatalf("full journal recovered %d of %d records", prevK, len(recs))
	}
}

func TestVerifyReports(t *testing.T) {
	dir := t.TempDir()
	recs := records(10)
	segs := buildDir(t, dir, recs, 96)

	rep, err := Verify(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != "" || rep.RecoverableFrames != len(recs) || rep.TruncatedBytes != 0 {
		t.Fatalf("clean journal report: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("recoverable frames: 10")) {
		t.Fatalf("report text:\n%s", buf.String())
	}

	// Torn tail: still recoverable, with dropped bytes reported. If the
	// final rotation left an empty tail segment, drop it so the tear
	// lands in a segment that has frames.
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		if err := os.Remove(last); err != nil {
			t.Fatal(err)
		}
		segs = segs[:len(segs)-1]
		last = segs[len(segs)-1]
		if info, err = os.Stat(last); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Truncate(last, info.Size()-2); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != "" || rep.TruncatedBytes == 0 || rep.RecoverableFrames >= len(recs) {
		t.Fatalf("torn journal report: %+v", rep)
	}
	// Verify is read-only: the torn bytes are still there afterwards.
	after, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != info.Size()-2 {
		t.Fatal("Verify modified the journal")
	}

	// Corruption in an early segment: unrecoverable verdict.
	buf0, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	buf0[frameHeaderSize+1] ^= 0xff
	if err := os.WriteFile(segs[0], buf0, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err == "" {
		t.Fatalf("corrupt journal reported recoverable: %+v", rep)
	}
}

func TestVerifyReportsSnapshotAndStaleSegments(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, records(10))
	if err := j.Compact(stateFrom(records(10))); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, [][]byte{[]byte("post-snap")})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasSnapshot || rep.Err != "" || rep.RecoverableFrames != 1 {
		t.Fatalf("post-compaction report: %+v", rep)
	}
	var out bytes.Buffer
	if err := rep.Write(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("snapshot  snap-")) {
		t.Fatalf("report text:\n%s", out.String())
	}
}

func TestScanFramesClassification(t *testing.T) {
	var stream []byte
	payloads := [][]byte{[]byte("one"), []byte("two-two"), []byte("three")}
	for _, p := range payloads {
		stream = appendFrame(stream, p)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		status scanStatus
		frames int
	}{
		{"clean", func(b []byte) []byte { return b }, scanClean, 3},
		{"torn header", func(b []byte) []byte { return b[:len(b)-frameHeaderSize-2] }, scanTorn, 2},
		{"torn payload", func(b []byte) []byte { return b[:len(b)-1] }, scanTorn, 2},
		{"zero tail", func(b []byte) []byte { return append(b, make([]byte, 20)...) }, scanTorn, 3},
		{"bad crc at end", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xff
			return c
		}, scanTorn, 2},
		{"bad crc mid-stream", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[frameHeaderSize] ^= 0xff
			return c
		}, scanCorrupt, 0},
		{"garbage after zero header", func(b []byte) []byte {
			return append(b, 0, 0, 0, 0, 0, 0, 0, 0, 'x')
		}, scanCorrupt, 3},
	}
	for _, tc := range cases {
		buf := tc.mutate(append([]byte(nil), stream...))
		_, frames, status, err := scanFrames(buf, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if status != tc.status || frames != tc.frames {
			t.Errorf("%s: status %v frames %d, want %v/%d", tc.name, status, frames, tc.status, tc.frames)
		}
	}
}

// TestRecordsWithZeroBytes ensures payload content is opaque: records full
// of zeros round-trip (the zero-fill heuristic only applies to damaged
// tails, never to intact frames).
func TestRecordsWithZeroBytes(t *testing.T) {
	dir := t.TempDir()
	recs := [][]byte{make([]byte, 40), {0, 1, 0, 2, 0}, make([]byte, 7)}
	j, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, recs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := replayAll(t, j2); !equalRecords(got, recs) {
		t.Fatalf("zero-byte records did not round-trip: %d records", len(got))
	}
}

func TestParseSeqRejectsStrays(t *testing.T) {
	for _, name := range []string{
		"seg-.wal", "seg-xyz.wal", "seg-0001.wal", "snap-0000000000000001.wal",
		"seg-0000000000000001.snap", "ledger.json", "seg-0000000000000001.wal.tmp",
	} {
		if _, ok := parseSeq(name, "seg-", ".wal"); ok {
			t.Errorf("parseSeq accepted %q", name)
		}
	}
	seq, ok := parseSeq(fmt.Sprintf("seg-%016x.wal", 42), "seg-", ".wal")
	if !ok || seq != 42 {
		t.Fatalf("parseSeq round trip: %d %v", seq, ok)
	}
}
