package vec

import (
	"math/rand"
	"testing"
)

func benchMatrix(n, d int, seed int64) *Matrix {
	r := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func BenchmarkDot(b *testing.B) {
	x := benchMatrix(1, 1024, 1).Row(0)
	y := benchMatrix(1, 1024, 2).Row(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}

func BenchmarkGram(b *testing.B) {
	m := benchMatrix(512, 64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Gram()
	}
}

func BenchmarkCholeskySolve(b *testing.B) {
	m := benchMatrix(128, 64, 4)
	a := m.Gram()
	a.AddDiag(1)
	rhs := benchMatrix(1, 64, 5).Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Cholesky(a)
		if err != nil {
			b.Fatal(err)
		}
		CholeskySolve(l, rhs)
	}
}

func BenchmarkMulVec(b *testing.B) {
	m := benchMatrix(1024, 90, 6)
	x := benchMatrix(1, 90, 7).Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x)
	}
}
