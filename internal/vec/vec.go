// Package vec provides the small dense linear-algebra kernel used by the
// Nimbus model-based pricing framework: vector arithmetic, dense matrices,
// Gram products and a Cholesky solver for the normal equations and Newton
// steps that the ML substrate relies on.
//
// Vectors are plain []float64 slices so that callers can interoperate with
// the rest of the code base without wrapper types; matrices are dense and
// row-major. Everything is implemented with the standard library only.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned (wrapped) when operand shapes do not match.
var ErrDimension = errors.New("vec: dimension mismatch")

// Dot returns the inner product of a and b.
// It panics if the lengths differ; shape errors here are programmer errors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// SqNorm2 returns the squared Euclidean norm of a.
func SqNorm2(a []float64) float64 {
	return Dot(a, a)
}

// Add returns a new vector a+b.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Add length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a new vector a-b.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns a new vector c*a.
func Scale(c float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = c * a[i]
	}
	return out
}

// AXPY performs dst += c*a in place and returns dst.
func AXPY(dst []float64, c float64, a []float64) []float64 {
	if len(dst) != len(a) {
		//lint:allocok panic on a programming error, not a steady-state allocation
		panic(fmt.Sprintf("vec: AXPY length mismatch %d vs %d", len(dst), len(a)))
	}
	for i := range dst {
		dst[i] += c * a[i]
	}
	return dst
}

// Clone returns a copy of a.
//
//lint:allocok the fresh copy is the function's product
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = element (i,j)
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("vec: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vec: MulVec shape (%d,%d) x %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// TMulVec returns mᵀ * x.
func (m *Matrix) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("vec: TMulVec shape (%d,%d)ᵀ x %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		AXPY(out, x[i], m.Row(i))
	}
	return out
}

// Gram returns mᵀm, the d x d Gram matrix of the design matrix m.
func (m *Matrix) Gram() *Matrix {
	d := m.Cols
	g := NewMatrix(d, d)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := 0; i < d; i++ {
			if row[i] == 0 {
				continue
			}
			gi := g.Data[i*d:]
			for j := i; j < d; j++ {
				gi[j] += row[i] * row[j]
			}
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			g.Set(j, i, g.At(i, j))
		}
	}
	return g
}

// WeightedGram returns mᵀ diag(w) m for per-row weights w.
func (m *Matrix) WeightedGram(w []float64) *Matrix {
	if len(w) != m.Rows {
		panic(fmt.Sprintf("vec: WeightedGram got %d weights for %d rows", len(w), m.Rows))
	}
	d := m.Cols
	g := NewMatrix(d, d)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		wr := w[r]
		if wr == 0 {
			continue
		}
		for i := 0; i < d; i++ {
			if row[i] == 0 {
				continue
			}
			ci := wr * row[i]
			gi := g.Data[i*d:]
			for j := i; j < d; j++ {
				gi[j] += ci * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			g.Set(j, i, g.At(i, j))
		}
	}
	return g
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("vec: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// AddDiag adds c to every diagonal element in place (ridge term).
func (m *Matrix) AddDiag(c float64) {
	if m.Rows != m.Cols {
		panic("vec: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += c
	}
}

// Cholesky computes the lower-triangular factor L with A = L Lᵀ for a
// symmetric positive-definite matrix. It returns an error when the matrix is
// not (numerically) positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("vec: Cholesky of non-square %dx%d matrix: %w", a.Rows, a.Cols, ErrDimension)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		sum := a.At(j, j)
		for k := 0; k < j; k++ {
			sum -= l.At(j, k) * l.At(j, k)
		}
		if sum <= 0 || math.IsNaN(sum) {
			return nil, fmt.Errorf("vec: matrix not positive definite at pivot %d (value %g)", j, sum)
		}
		ljj := math.Sqrt(sum)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// CholeskySolve solves A x = b given the Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("vec: CholeskySolve length mismatch %d vs %d", len(b), n))
	}
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A x = b for symmetric positive-definite A, adding a tiny
// escalating ridge when the factorization fails so that nearly-singular
// normal equations still produce a usable solution.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	work := a.Clone()
	ridge := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		l, err := Cholesky(work)
		if err == nil {
			return CholeskySolve(l, b), nil
		}
		if ridge == 0 {
			ridge = 1e-10 * (1 + work.Trace()/float64(work.Rows))
		} else {
			ridge *= 100
		}
		work = a.Clone()
		work.AddDiag(ridge)
	}
	return nil, fmt.Errorf("vec: SolveSPD failed even with ridge %g", ridge)
}

// MaxAbsDiff returns max_i |a_i - b_i|, useful for convergence checks.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: MaxAbsDiff length mismatch %d vs %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
