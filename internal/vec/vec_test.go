package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := Add(a, b); got[0] != 4 || got[1] != 7 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); got[0] != 2 || got[1] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Scale(2, a); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Scale = %v", got)
	}
	// Inputs must be unchanged.
	if a[0] != 1 || b[0] != 3 {
		t.Fatal("operands mutated")
	}
}

func TestAXPY(t *testing.T) {
	dst := []float64{1, 1, 1}
	AXPY(dst, 2, []float64{1, 2, 3})
	want := []float64{3, 5, 7}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AXPY = %v, want %v", dst, want)
		}
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, 4}
	if Norm2(v) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(v))
	}
	if SqNorm2(v) != 25 {
		t.Fatalf("SqNorm2 = %v", SqNorm2(v))
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 || m.At(1, 1) != 3 {
		t.Fatal("At/Set broken")
	}
	r := m.Row(1)
	if r[1] != 3 {
		t.Fatal("Row broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases source")
	}
}

func TestMulVecAndTranspose(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
	gt := m.TMulVec([]float64{1, 2})
	want := []float64{9, 12, 15}
	for i := range want {
		if gt[i] != want[i] {
			t.Fatalf("TMulVec = %v, want %v", gt, want)
		}
	}
}

func TestGram(t *testing.T) {
	m := NewMatrix(3, 2)
	copy(m.Data, []float64{1, 0, 1, 1, 0, 2})
	g := m.Gram()
	// mᵀm = [[2,1],[1,5]]
	want := []float64{2, 1, 1, 5}
	for i, w := range want {
		if g.Data[i] != w {
			t.Fatalf("Gram = %v, want %v", g.Data, want)
		}
	}
}

func TestWeightedGram(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	g := m.WeightedGram([]float64{2, 0})
	// 2 * [1,2]ᵀ[1,2] = [[2,4],[4,8]]
	want := []float64{2, 4, 4, 8}
	for i, w := range want {
		if g.Data[i] != w {
			t.Fatalf("WeightedGram = %v, want %v", g.Data, want)
		}
	}
}

func TestCholeskySolveKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{4, 2, 2, 3})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := CholeskySolve(l, []float64{8, 7})
	// Solution of [[4,2],[2,3]] x = [8,7] is x = [1.25, 1.5].
	if !almostEq(x[0], 1.25, 1e-12) || !almostEq(x[1], 1.5, 1e-12) {
		t.Fatalf("solve = %v", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestSolveSPDRandomSystems(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(8)
		// Build SPD A = BᵀB + I.
		b := NewMatrix(n+2, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := b.Gram()
		a.AddDiag(1)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.NormFloat64()
		}
		rhs := a.MulVec(xTrue)
		x, err := SolveSPD(a, rhs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if MaxAbsDiff(x, xTrue) > 1e-8 {
			t.Fatalf("trial %d: residual %v", trial, MaxAbsDiff(x, xTrue))
		}
	}
}

func TestSolveSPDNearSingular(t *testing.T) {
	// Rank-deficient Gram matrix; the ridge fallback must still return.
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 1, 1, 1})
	x, err := SolveSPD(a, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// A x should be close to b for the ridged system.
	got := a.MulVec(x)
	if !almostEq(got[0], 2, 1e-3) || !almostEq(got[1], 2, 1e-3) {
		t.Fatalf("A x = %v", got)
	}
}

func TestTraceAndAddDiag(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 2)
	a.Set(2, 2, 3)
	if a.Trace() != 6 {
		t.Fatalf("Trace = %v", a.Trace())
	}
	a.AddDiag(0.5)
	if a.Trace() != 7.5 {
		t.Fatalf("Trace after AddDiag = %v", a.Trace())
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestQuickDotProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		sym := almostEq(Dot(a, b), Dot(b, a), 1e-6)
		lin := almostEq(Dot(Scale(2, a), b), 2*Dot(a, b), math.Abs(Dot(a, b))*1e-9+1e-6)
		return sym && lin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky factor reproduces the matrix: L Lᵀ = A.
func TestQuickCholeskyReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(6)
		b := NewMatrix(n+1, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := b.Gram()
		a.AddDiag(0.5)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k <= min(i, j); k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEq(s, a.At(i, j), 1e-8*(1+math.Abs(a.At(i, j)))) {
					t.Fatalf("LLᵀ[%d,%d] = %v, want %v", i, j, s, a.At(i, j))
				}
			}
		}
	}
}
