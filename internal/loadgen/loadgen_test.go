package loadgen

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"nimbus/internal/dataset"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
	"nimbus/internal/server"
	"nimbus/internal/telemetry"
)

// newBrokerServer stands up a small one-offering broker behind the full
// production middleware, mirroring nimbusd's wiring.
func newBrokerServer(t *testing.T, reg *telemetry.Registry) *httptest.Server {
	t.Helper()
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := dataset.NewPair(d, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	seller, err := market.NewSeller(pair, market.Research{
		Value:  func(e float64) float64 { return 60 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	broker := market.NewBroker(13)
	broker.SetTelemetry(reg)
	if _, err := broker.List(market.OfferingConfig{
		Seller:  seller,
		Model:   ml.LinearRegression{Ridge: 1e-3},
		Grid:    pricing.DefaultGrid(12),
		Samples: 40,
		Seed:    14,
	}); err != nil {
		t.Fatal(err)
	}
	quiet := func(string, ...any) {}
	handler := server.New(broker, server.WithLogger(quiet), server.WithTelemetry(reg))
	srv := httptest.NewServer(server.WithMiddleware(handler, quiet, reg))
	t.Cleanup(srv.Close)
	return srv
}

func client(srv *httptest.Server) *server.Client {
	return &server.Client{BaseURL: srv.URL}
}

// TestRunCountMode drives an exact request count through the generator and
// checks the report adds up with zero errors — satisfiable budgets mean
// every generated purchase should land a 2xx.
func TestRunCountMode(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := newBrokerServer(t, reg)
	rep, err := Run(context.Background(), client(srv), Config{
		Concurrency: 4,
		Count:       100,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 100 {
		t.Errorf("requests = %d, want 100", rep.Requests)
	}
	if rep.Errors != 0 || rep.NonOK != 0 {
		t.Errorf("errors = %d (non-2xx %d), want 0: all budgets derive from listed curve points", rep.Errors, rep.NonOK)
	}
	var byOpt int
	for _, opt := range PurchaseOptions {
		n := rep.ByOption[opt]
		if n == 0 {
			t.Errorf("option %q never exercised", opt)
		}
		byOpt += n
	}
	if byOpt != rep.Requests {
		t.Errorf("per-option counts sum to %d, want %d", byOpt, rep.Requests)
	}
	if rep.Revenue <= 0 {
		t.Errorf("revenue = %v, want > 0", rep.Revenue)
	}
	if rep.P50 <= 0 || rep.P95 < rep.P50 || rep.P99 < rep.P95 || rep.Max < rep.P99 {
		t.Errorf("latency percentiles out of order: p50=%v p95=%v p99=%v max=%v", rep.P50, rep.P95, rep.P99, rep.Max)
	}
	if rep.QPS <= 0 {
		t.Errorf("qps = %v, want > 0", rep.QPS)
	}

	// The generator's own revenue tally must agree with the broker's
	// telemetry — the load core is also a consistency check on /metrics.
	snap := reg.Snapshot()
	if got := snap.CounterValue("nimbus_revenue_total"); !within(got, rep.Revenue, 1e-6) {
		t.Errorf("broker revenue series = %v, generator saw %v", got, rep.Revenue)
	}
	if got := snap.CounterValue("nimbus_http_requests_total", "route", "POST /api/v1/buy", "class", "2xx"); got != float64(rep.Requests) {
		t.Errorf("buy 2xx series = %v, want %v", got, rep.Requests)
	}
}

// TestRunDurationMode checks the time-bounded mode terminates on its own.
func TestRunDurationMode(t *testing.T) {
	srv := newBrokerServer(t, nil)
	start := time.Now()
	rep, err := Run(context.Background(), client(srv), Config{
		Concurrency: 2,
		Duration:    300 * time.Millisecond,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("duration mode ran %v, expected a prompt stop", elapsed)
	}
	if rep.Requests == 0 {
		t.Error("duration mode completed no requests")
	}
}

// TestRunPacing checks the shared ticker actually caps aggregate QPS: 20
// requests at 100 req/s cannot finish faster than ~200ms no matter how many
// buyers run.
func TestRunPacing(t *testing.T) {
	srv := newBrokerServer(t, nil)
	start := time.Now()
	rep, err := Run(context.Background(), client(srv), Config{
		Concurrency: 8,
		Count:       20,
		Rate:        100,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("20 requests at 100 req/s finished in %v; pacing is not applied", elapsed)
	}
	if rep.Requests != 20 || rep.Errors != 0 {
		t.Errorf("requests = %d errors = %d, want 20 and 0", rep.Requests, rep.Errors)
	}
}

// TestRunRejectsBadConfig covers the validation error paths.
func TestRunRejectsBadConfig(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"no concurrency", Config{Concurrency: 0, Count: 1}},
		{"no bound", Config{Concurrency: 1}},
		{"negative rate", Config{Concurrency: 1, Count: 1, Rate: -5}},
	} {
		if _, err := Run(context.Background(), nil, tc.cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", tc.name)
		}
	}
}

// TestRunEmptyMenu checks the generator refuses a broker with nothing to
// sell instead of spinning.
func TestRunEmptyMenu(t *testing.T) {
	quiet := func(string, ...any) {}
	handler := server.New(market.NewBroker(1), server.WithLogger(quiet))
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	_, err := Run(context.Background(), client(srv), Config{
		Concurrency: 1, Count: 5,
	})
	if err == nil || !strings.Contains(err.Error(), "empty menu") {
		t.Errorf("err = %v, want empty-menu refusal", err)
	}
}

// TestPercentile pins the nearest-rank convention.
func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1},
	} {
		if got := Percentile(sorted, tc.q); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
}

func within(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// TestNextRequestDeterministic pins the replayable traffic mix at its
// source: with the same seed and target list, the generated request
// sequence is identical value for value — no server required.
func TestNextRequestDeterministic(t *testing.T) {
	targets := []target{
		{offering: "CASP/linreg", loss: "squared", points: []curvePoint{
			{x: 1, err: 0.9, price: 10}, {x: 2, err: 0.5, price: 20}, {x: 5, err: 0.1, price: 45},
		}},
		{offering: "CASP/linreg", loss: "absolute", points: []curvePoint{
			{x: 1, err: 0.8, price: 12}, {x: 3, err: 0.3, price: 30},
		}},
	}
	gen := func(seed int64, n int) []server.BuyRequest {
		rnd := rng.New(seed)
		reqs := make([]server.BuyRequest, n)
		for i := range reqs {
			reqs[i] = nextRequest(rnd, targets)
		}
		return reqs
	}
	a, b := gen(42, 500), gen(42, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different request sequences")
	}
	c := gen(43, 500)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced the identical 500-request sequence")
	}
	// Every option appears, and every value is positive and finite — the
	// mix covers the API surface with satisfiable requests.
	seen := map[string]int{}
	for _, r := range a {
		seen[r.Option]++
		if r.Value <= 0 {
			t.Fatalf("generated non-positive value: %+v", r)
		}
	}
	for _, opt := range PurchaseOptions {
		if seen[opt] == 0 {
			t.Errorf("option %q never generated in 500 draws", opt)
		}
	}
}

// TestRunReplayableWithSeed pins end-to-end replayability: two runs with
// the same seed against identically-listed brokers must issue the
// identical purchase mix and collect the identical revenue, bit for bit.
func TestRunReplayableWithSeed(t *testing.T) {
	do := func() Report {
		rep, err := Run(context.Background(), client(newBrokerServer(t, nil)), Config{
			Concurrency: 1,
			Count:       60,
			Seed:        99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := do(), do()
	if !reflect.DeepEqual(a.ByOption, b.ByOption) {
		t.Errorf("option mix not replayable: %v vs %v", a.ByOption, b.ByOption)
	}
	if a.Revenue != b.Revenue {
		t.Errorf("revenue not replayable: %v vs %v", a.Revenue, b.Revenue)
	}
	if a.Requests != b.Requests {
		t.Errorf("request counts differ: %d vs %d", a.Requests, b.Requests)
	}
}
