package loadgen

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"nimbus/internal/registry"
	"nimbus/internal/server"
	"nimbus/internal/telemetry"
)

// newMultiServer stands up a multi-tenant daemon with the given markets,
// one cheap CASP offering per tenant, behind the production middleware.
func newMultiServer(t *testing.T, reg *telemetry.Registry, ids []string) *httptest.Server {
	t.Helper()
	r, err := registry.Open(registry.Config{Commission: 0.1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	for i, id := range ids {
		_, err := r.List(registry.Spec{
			ID:        id,
			Generator: "CASP",
			Rows:      150,
			Grid:      8,
			Samples:   24,
			Seed:      int64(50 + 10*i),
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	quiet := func(string, ...any) {}
	handler := server.NewMulti(r, server.WithLogger(quiet), server.WithTelemetry(reg))
	srv := httptest.NewServer(server.WithMiddleware(handler, quiet, reg))
	t.Cleanup(srv.Close)
	return srv
}

// TestRunMultiMarket spreads a count-mode run across three tenant markets
// and checks the traffic actually lands on all of them, error-free, with
// the spread recorded in the report.
func TestRunMultiMarket(t *testing.T) {
	reg := telemetry.NewRegistry()
	ids := []string{"alpha", "beta", "gamma"}
	srv := newMultiServer(t, reg, ids)
	rep, err := Run(context.Background(), client(srv), Config{
		Concurrency: 3,
		Count:       90,
		Seed:        17,
		Markets:     ids,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 90 || rep.Errors != 0 || rep.NonOK != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Markets != 3 {
		t.Fatalf("markets stamp %d, want 3", rep.Markets)
	}
	var spread int
	for _, id := range ids {
		n := rep.ByMarket[id]
		// Round-robin from seeded offsets: every market sees a fair share.
		if n < 90/3-len(ids) || n > 90/3+len(ids) {
			t.Fatalf("market %s got %d of 90 requests: %v", id, n, rep.ByMarket)
		}
		spread += n
	}
	if spread != 90 {
		t.Fatalf("by_market sums to %d: %v", spread, rep.ByMarket)
	}
	// The per-market telemetry agrees with the generator's own tally.
	snap := reg.Snapshot()
	for _, id := range ids {
		if got := snap.CounterValue("nimbus_market_purchases_total", "market", id); int(got) != rep.ByMarket[id] {
			t.Fatalf("market %s: telemetry %v, report %d", id, got, rep.ByMarket[id])
		}
	}
}

// TestRunMultiMarketReplayable runs the identical seeded config twice
// against identically-listed marketplaces: the request mix must replay.
// One buyer, as in TestRunReplayableWithSeed — with several workers the
// per-worker split of the shared request count is scheduler-dependent.
func TestRunMultiMarketReplayable(t *testing.T) {
	ids := []string{"east", "west"}
	run := func() Report {
		reg := telemetry.NewRegistry()
		srv := newMultiServer(t, reg, ids)
		rep, err := Run(context.Background(), client(srv), Config{
			Concurrency: 1,
			Count:       40,
			Seed:        23,
			Markets:     ids,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.ByOption, b.ByOption) {
		t.Fatalf("option mix not replayable: %v vs %v", a.ByOption, b.ByOption)
	}
	if !reflect.DeepEqual(a.ByMarket, b.ByMarket) {
		t.Fatalf("market spread not replayable: %v vs %v", a.ByMarket, b.ByMarket)
	}
	if a.Revenue != b.Revenue {
		t.Fatalf("revenue not replayable: %v vs %v", a.Revenue, b.Revenue)
	}
}

// TestValidateMarkets pins the Markets knob validation.
func TestValidateMarkets(t *testing.T) {
	base := Config{Concurrency: 1, Count: 1}
	good := base
	good.Markets = []string{"a", "b"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := base
	dup.Markets = []string{"a", "a"}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate market accepted")
	}
	empty := base
	empty.Markets = []string{""}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty market id accepted")
	}
}
