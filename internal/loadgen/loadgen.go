// Package loadgen is the closed-loop buyer-traffic core shared by
// cmd/nimbus-load (standalone load runs against a remote broker) and
// internal/perf (the recorded perf trajectory, driving an in-process
// broker). N concurrent buyers mix the paper's three purchase options
// (buy at quality, buy under an error budget, buy under a price budget)
// across every (offering, loss) curve on the menu, optionally paced by a
// shared aggregate rate cap.
//
// The traffic mix is replayable: buyer i draws every curve, point and
// option choice from an rng stream seeded with Config.Seed+i, so two runs
// with the same seed against identically-listed brokers issue the
// identical request sequence. Budgets are derived from the live
// price–error curves (a random curve point's error or price, inflated by
// up to 50%), so every generated request is satisfiable.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nimbus/internal/market"
	"nimbus/internal/rng"
	"nimbus/internal/server"
)

// PurchaseOptions are the three buy options the generator cycles through,
// matching the POST /api/v1/buy "option" field.
var PurchaseOptions = [...]string{"quality", "error-budget", "price-budget"}

// Config is one load run.
type Config struct {
	Concurrency int
	Duration    time.Duration // run length (ignored when Count > 0)
	Count       int           // total request count (0 = run for Duration)
	Seed        int64         // base seed; buyer i draws from rng.New(Seed+i)
	// Rate caps the aggregate request rate (req/s); 0 runs fully
	// closed-loop, as fast as responses return.
	Rate float64
	// Markets spreads traffic across a multi-tenant daemon: each buyer
	// round-robins the listed dataset IDs (from a seeded starting offset)
	// and purchases through the tenant-scoped routes. Empty targets the
	// legacy single-market API unchanged.
	Markets []string
}

// Validate reports the first configuration error, or nil.
func (cfg Config) Validate() error {
	if cfg.Concurrency <= 0 {
		return fmt.Errorf("concurrency %d must be positive", cfg.Concurrency)
	}
	if cfg.Count <= 0 && cfg.Duration <= 0 {
		return errors.New("need a positive request count or duration")
	}
	if cfg.Rate < 0 {
		return fmt.Errorf("rate %v must be non-negative", cfg.Rate)
	}
	seen := make(map[string]bool, len(cfg.Markets))
	for _, id := range cfg.Markets {
		if id == "" {
			return errors.New("markets list contains an empty dataset id")
		}
		if seen[id] {
			return fmt.Errorf("market %q listed twice", id)
		}
		seen[id] = true
	}
	return nil
}

// Report is the run summary. All latencies are in seconds.
type Report struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`  // transport failures + non-2xx
	NonOK    int     `json:"non_2xx"` // the non-2xx subset
	Elapsed  float64 `json:"elapsed_seconds"`
	QPS      float64 `json:"qps"`
	Min      float64 `json:"latency_min_seconds"`
	Mean     float64 `json:"latency_mean_seconds"`
	P50      float64 `json:"latency_p50_seconds"`
	P95      float64 `json:"latency_p95_seconds"`
	P99      float64 `json:"latency_p99_seconds"`
	Max      float64 `json:"latency_max_seconds"`
	// ByOption counts completed requests per purchase option.
	ByOption map[string]int `json:"by_option"`
	// Revenue sums the prices of successful purchases, for cross-checking
	// against the broker's nimbus_revenue_total series.
	Revenue float64 `json:"revenue"`
	// Markets is the number of tenant markets the run spread across
	// (0 = legacy single-market run).
	Markets int `json:"markets,omitempty"`
	// ByMarket counts completed requests per dataset ID (multi-market
	// runs only).
	ByMarket map[string]int `json:"by_market,omitempty"`
}

// target is one (offering, loss) curve a buyer can shop on.
type target struct {
	offering string
	loss     string
	points   []curvePoint
}

type curvePoint struct {
	x, err, price float64
}

// targetGroup is one market's shoppable curves. Single-market runs use
// one group with an empty market ID.
type targetGroup struct {
	market  string // dataset ID; "" = legacy single-market API
	targets []target
}

// workerResult is one buyer's tally, merged after the run.
type workerResult struct {
	latencies []float64
	byOption  map[string]int
	byMarket  map[string]int
	errs      int
	nonOK     int
	revenue   float64
}

// Run executes the load test against the broker behind client and returns
// the merged report. A caller-cancelled context is a clean early stop
// unless no request completed at all.
func Run(ctx context.Context, client *server.Client, cfg Config) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	groups, err := loadTargetGroups(ctx, client, cfg.Markets)
	if err != nil {
		return Report{}, err
	}

	// Count mode claims request slots from a shared counter; duration mode
	// runs every buyer until the deadline.
	runCtx := ctx
	if cfg.Count <= 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}
	var issued atomic.Int64
	claim := func() bool {
		if runCtx.Err() != nil {
			return false
		}
		if cfg.Count > 0 {
			return issued.Add(1) <= int64(cfg.Count)
		}
		return true
	}

	// A shared ticker paces all buyers: each tick releases one request, so
	// the aggregate rate — not the per-worker rate — is what's capped.
	var tick <-chan time.Time
	if cfg.Rate > 0 {
		ticker := time.NewTicker(time.Duration(float64(time.Second) / cfg.Rate))
		defer ticker.Stop()
		tick = ticker.C
	}

	results := make([]workerResult, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = buyer(runCtx, client, groups, rng.New(cfg.Seed+int64(i)), claim, tick)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := merge(results, elapsed)
	rep.Markets = len(cfg.Markets)
	if ctx.Err() != nil && rep.Requests == 0 {
		return rep, ctx.Err()
	}
	return rep, nil
}

// loadTargetGroups fetches the shoppable curves: the whole menu as one
// group for single-market runs, or one group per tenant market fetched
// through the tenant-scoped routes.
func loadTargetGroups(ctx context.Context, client *server.Client, markets []string) ([]targetGroup, error) {
	if len(markets) == 0 {
		targets, err := loadTargets(ctx, client, "")
		if err != nil {
			return nil, err
		}
		return []targetGroup{{targets: targets}}, nil
	}
	groups := make([]targetGroup, 0, len(markets))
	for _, id := range markets {
		targets, err := loadTargets(ctx, client, id)
		if err != nil {
			return nil, fmt.Errorf("market %s: %w", id, err)
		}
		groups = append(groups, targetGroup{market: id, targets: targets})
	}
	return groups, nil
}

// loadTargets fetches one menu and every per-loss price–error curve;
// market "" uses the legacy single-market routes.
func loadTargets(ctx context.Context, client *server.Client, market string) ([]target, error) {
	fetchMenu := func() (*server.MenuResponse, error) { return client.Menu(ctx) }
	fetchCurve := func(offering, loss string) (*server.CurveResponse, error) {
		return client.Curve(ctx, offering, loss)
	}
	if market != "" {
		fetchMenu = func() (*server.MenuResponse, error) { return client.TenantMenu(ctx, market) }
		fetchCurve = func(offering, loss string) (*server.CurveResponse, error) {
			return client.TenantCurve(ctx, market, offering, loss)
		}
	}
	menu, err := fetchMenu()
	if err != nil {
		return nil, fmt.Errorf("fetching menu: %w", err)
	}
	if len(menu.Offerings) == 0 {
		return nil, errors.New("broker has an empty menu; nothing to buy")
	}
	var targets []target
	for _, o := range menu.Offerings {
		for _, loss := range o.Losses {
			curve, err := fetchCurve(o.Name, loss)
			if err != nil {
				return nil, fmt.Errorf("fetching curve %s/%s: %w", o.Name, loss, err)
			}
			t := target{offering: o.Name, loss: loss}
			for _, p := range curve.Points {
				t.points = append(t.points, curvePoint{x: p.X, err: p.Error, price: p.Price})
			}
			if len(t.points) > 0 {
				targets = append(targets, t)
			}
		}
	}
	if len(targets) == 0 {
		return nil, errors.New("no offering has a non-empty price–error curve")
	}
	return targets, nil
}

// nextRequest draws one buy request from the buyer's rng stream. It is the
// whole replayable surface of a buyer: everything a run sends is a pure
// function of the target list and the stream's state.
func nextRequest(rnd *rng.Source, targets []target) server.BuyRequest {
	t := targets[rnd.Intn(len(targets))]
	pt := t.points[rnd.Intn(len(t.points))]
	opt := PurchaseOptions[rnd.Intn(len(PurchaseOptions))]
	req := server.BuyRequest{Offering: t.offering, Loss: t.loss, Option: opt}
	switch opt {
	case "quality":
		req.Value = pt.x
	case "error-budget":
		// Any listed point's error is attainable; inflating it keeps the
		// request satisfiable while varying which point is bought.
		req.Value = pt.err * (1 + 0.5*rnd.Float64())
	case "price-budget":
		req.Value = pt.price * (1 + 0.5*rnd.Float64())
	}
	return req
}

// buyer is one closed-loop worker: claim a slot, pick a market (round-
// robin from a seeded start), pick a curve and option, buy, record,
// repeat. With one group the market rotation degenerates to the legacy
// single-market loop and draws nothing extra from the rng stream.
func buyer(ctx context.Context, client *server.Client, groups []targetGroup, rnd *rng.Source, claim func() bool, tick <-chan time.Time) workerResult {
	res := workerResult{byOption: make(map[string]int)}
	gi := 0
	if len(groups) > 1 {
		gi = rnd.Intn(len(groups))
		res.byMarket = make(map[string]int)
	}
	for claim() {
		if tick != nil {
			select {
			case <-tick:
			case <-ctx.Done():
				return res
			}
		}
		grp := groups[gi]
		gi = (gi + 1) % len(groups)
		req := nextRequest(rnd, grp.targets)
		reqStart := time.Now()
		var p *market.Purchase
		var err error
		if grp.market == "" {
			p, err = client.Buy(ctx, req)
		} else {
			p, err = client.TenantBuy(ctx, grp.market, req)
		}
		res.latencies = append(res.latencies, time.Since(reqStart).Seconds())
		res.byOption[req.Option]++
		if res.byMarket != nil {
			res.byMarket[grp.market]++
		}
		if err != nil {
			if ctx.Err() != nil {
				// The deadline cut this request off mid-flight; drop it
				// rather than report a spurious failure.
				res.latencies = res.latencies[:len(res.latencies)-1]
				res.byOption[req.Option]--
				if res.byMarket != nil {
					res.byMarket[grp.market]--
				}
				break
			}
			res.errs++
			var apiErr *server.APIError
			if errors.As(err, &apiErr) {
				res.nonOK++
			}
			continue
		}
		res.revenue += p.Price
	}
	return res
}

// merge folds the per-worker tallies into a report with exact percentiles
// (all latencies are kept and sorted — a load test's sample counts are small
// enough that estimation would be a needless loss of precision).
func merge(results []workerResult, elapsed time.Duration) Report {
	rep := Report{Elapsed: elapsed.Seconds(), ByOption: make(map[string]int)}
	var all []float64
	for _, r := range results {
		all = append(all, r.latencies...)
		rep.Errors += r.errs
		rep.NonOK += r.nonOK
		rep.Revenue += r.revenue
		for k, v := range r.byOption {
			rep.ByOption[k] += v
		}
		for k, v := range r.byMarket {
			if rep.ByMarket == nil {
				rep.ByMarket = make(map[string]int)
			}
			rep.ByMarket[k] += v
		}
	}
	rep.Requests = len(all)
	if rep.Requests == 0 {
		return rep
	}
	sort.Float64s(all)
	var sum float64
	for _, v := range all {
		sum += v
	}
	rep.QPS = float64(rep.Requests) / rep.Elapsed
	rep.Min = all[0]
	rep.Max = all[len(all)-1]
	rep.Mean = sum / float64(len(all))
	rep.P50 = Percentile(all, 0.50)
	rep.P95 = Percentile(all, 0.95)
	rep.P99 = Percentile(all, 0.99)
	return rep
}

// Percentile reads the q-th quantile off a sorted sample (nearest-rank).
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}
