// Package nimbus is a Go implementation of Nimbus: model-based pricing
// (MBP) for machine learning in a data marketplace, after Chen, Koutris and
// Kumar ("Model-based Pricing for Machine Learning in a Data Marketplace";
// demonstrated as Nimbus at SIGMOD 2019).
//
// Instead of selling raw data, a Nimbus broker trains the optimal model
// instance once and sells noisy versions of it. The noise control parameter
// δ governs the expected error of the sold instance, and the price is a
// function of the quality knob x = 1/δ that is provably arbitrage-free:
// non-negative, monotone and subadditive (Theorem 5 of the paper). Revenue
// is maximized with an O(n²) dynamic program over the seller's market
// research, within a factor two of the coNP-hard exact optimum and
// empirically indistinguishable from it.
//
// # Quickstart
//
//	pair, _ := nimbus.NewPair(nimbus.Simulated1(nimbus.GenConfig{Rows: 10000, Seed: 1}), nimbus.NewRand(2))
//	seller, _ := nimbus.NewSeller(pair, nimbus.Research{
//		Value:  func(err float64) float64 { return 100 / (1 + err) },
//		Demand: func(err float64) float64 { return 1 },
//	})
//	broker := nimbus.NewBroker(3)
//	offering, _ := broker.List(nimbus.OfferingConfig{Seller: seller, Model: nimbus.LinearRegression{}})
//	buyer, _ := nimbus.NewBuyer("alice", 50)
//	purchase, _ := buyer.BuyBest(broker, offering.Name, "squared")
//	fmt.Println(purchase.Price, purchase.ExpectedError, purchase.Weights)
//
// The facade re-exports the library's building blocks so downstream users
// never import internal packages directly: datasets and generators
// (Table 3), ML models and losses (Table 2), noise mechanisms (Section 4),
// arbitrage-free pricing functions and error transformations (Sections 3–4),
// revenue optimization (Section 5), the market agents, and the HTTP broker.
package nimbus

import (
	"nimbus/internal/aggregate"
	"nimbus/internal/dataset"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/noise"
	"nimbus/internal/opt"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
	"nimbus/internal/server"
	"nimbus/internal/vec"
)

// Datasets (Table 3) and relational substrate.
type (
	// Dataset is a labeled relation of examples z = (x, y).
	Dataset = dataset.Dataset
	// Pair is a train/test split offered for sale.
	Pair = dataset.Pair
	// Task distinguishes regression from classification.
	Task = dataset.Task
	// GenConfig configures the synthetic generators.
	GenConfig = dataset.GenConfig
	// DatasetStats is one row of Table 3.
	DatasetStats = dataset.Stats
	// Matrix is the dense row-major design matrix used by Dataset.
	Matrix = vec.Matrix
)

// NewMatrix allocates a zero rows x cols design matrix (fill Data row-major
// and pass it to NewDataset).
func NewMatrix(rows, cols int) *Matrix { return vec.NewMatrix(rows, cols) }

// Dataset task values.
const (
	Regression     = dataset.Regression
	Classification = dataset.Classification
)

// Generator and I/O functions re-exported from the dataset substrate.
var (
	// Simulated1 generates the paper's synthetic regression dataset.
	Simulated1 = dataset.Simulated1
	// Simulated2 generates the paper's synthetic classification dataset.
	Simulated2 = dataset.Simulated2
	// StandIn generates a synthetic stand-in for a UCI dataset by name
	// (YearMSD, CASP, CovType, SUSY).
	StandIn = dataset.StandIn
	// DatasetSuite generates all six Table 3 datasets at a row scale.
	DatasetSuite = dataset.Suite
	// NewDataset builds a dataset from a design matrix and targets.
	NewDataset = dataset.New
	// NewPair splits a dataset 75/25 into train/test.
	NewPair = dataset.NewPair
	// ReadCSV loads a labeled relation from CSV.
	ReadCSV = dataset.ReadCSV
)

// ML models and error functions (Table 2).
type (
	// Model is an ML model from the broker's menu.
	Model = ml.Model
	// Loss is an error function λ or ε.
	Loss = ml.Loss
	// LinearRegression is least squares, fit in closed form.
	LinearRegression = ml.LinearRegression
	// LogisticRegression is L2 logistic regression fit by Newton's method.
	LogisticRegression = ml.LogisticRegression
	// LinearSVM is the L2 linear SVM fit by subgradient descent.
	LinearSVM = ml.LinearSVM
	// SquaredLoss is the least-squares error function.
	SquaredLoss = ml.SquaredLoss
	// LogisticLoss is the logistic error function over ±1 labels.
	LogisticLoss = ml.LogisticLoss
	// HingeLoss is the SVM hinge error function.
	HingeLoss = ml.HingeLoss
	// ZeroOneLoss is the misclassification rate.
	ZeroOneLoss = ml.ZeroOneLoss
	// GradientDescent is the generic full-gradient trainer.
	GradientDescent = ml.GradientDescent
	// MiniBatchSGD is the stochastic trainer for paper-scale datasets.
	MiniBatchSGD = ml.MiniBatchSGD
	// Standardizer centers and scales features fit on the train set.
	Standardizer = ml.Standardizer
	// Lasso is L1-regularized (elastic-net) least squares fit by ISTA.
	Lasso = ml.Lasso
)

// Model and loss lookups for CLI/HTTP surfaces.
var (
	// ModelByName resolves a menu model by name.
	ModelByName = ml.ModelByName
	// LossByName resolves an error function by name.
	LossByName = ml.LossByName
	// FitStandardizer computes per-column statistics on a dataset.
	FitStandardizer = ml.FitStandardizer
	// PolynomialFeatures expands a relation with powers and interactions.
	PolynomialFeatures = ml.PolynomialFeatures
	// Sparsity reports the fraction of exactly-zero weights.
	Sparsity = ml.Sparsity
	// EvaluateRegression scores a weight vector with RMSE/MAE/R².
	EvaluateRegression = ml.EvaluateRegression
	// EvaluateClassification scores a classifier with accuracy/F1/AUC.
	EvaluateClassification = ml.EvaluateClassification
)

// Metric reports.
type (
	// RegressionReport is EvaluateRegression's output.
	RegressionReport = ml.RegressionReport
	// ClassificationReport is EvaluateClassification's output.
	ClassificationReport = ml.ClassificationReport
)

// Noise mechanisms (Section 4).
type (
	// Mechanism perturbs the optimal instance with NCP-calibrated noise.
	Mechanism = noise.Mechanism
	// Gaussian is the paper's primary mechanism K_G.
	Gaussian = noise.Gaussian
	// Laplace is the alternative Laplace-noise mechanism.
	Laplace = noise.Laplace
	// Uniform is the additive uniform-noise mechanism of Example 1.
	Uniform = noise.Uniform
)

// Pricing (Sections 3–4).
type (
	// PriceFunction is an arbitrage-free piecewise-linear pricing function
	// over the quality axis x = 1/δ.
	PriceFunction = pricing.Function
	// PricePointXY is a knot of a pricing function.
	PricePointXY = pricing.Point
	// ErrorCurve maps quality to expected reporting error.
	ErrorCurve = pricing.ErrorCurve
	// PriceErrorCurve is the buyer-facing menu of (quality, error, price).
	PriceErrorCurve = pricing.PriceErrorCurve
	// TransformConfig configures a Monte-Carlo error transformation.
	TransformConfig = pricing.TransformConfig
)

// Pricing constructors and checks.
var (
	// NewPriceFunction builds a pricing function from knots.
	NewPriceFunction = pricing.NewFunction
	// MonteCarloTransform estimates the error transformation empirically.
	MonteCarloTransform = pricing.MonteCarloTransform
	// AnalyticSquaredTransform computes it in closed form for squared loss.
	AnalyticSquaredTransform = pricing.AnalyticSquaredTransform
	// DefaultGrid is the paper's quality grid of n points in [1, 100].
	DefaultGrid = pricing.DefaultGrid
	// CheckSubadditiveOnGrid verifies Theorem 5's subadditivity condition.
	CheckSubadditiveOnGrid = pricing.CheckSubadditiveOnGrid
	// CheckMonotoneOnGrid verifies price monotonicity.
	CheckMonotoneOnGrid = pricing.CheckMonotoneOnGrid
)

// Revenue optimization (Section 5).
type (
	// BuyerPoint is one market-research point (quality, valuation, mass).
	BuyerPoint = opt.BuyerPoint
	// RevenueProblem is a revenue-maximization instance.
	RevenueProblem = opt.Problem
	// InterpTarget is a seller-desired price point for interpolation.
	InterpTarget = opt.PricePoint
)

// Revenue optimizers and baselines.
var (
	// NewRevenueProblem validates buyer points into a problem.
	NewRevenueProblem = opt.NewProblem
	// MaximizeRevenueDP is the paper's O(n²) Algorithm 1.
	MaximizeRevenueDP = opt.MaximizeRevenueDP
	// MaximizeRevenueBruteForce is the exact exponential Algorithm 2.
	MaximizeRevenueBruteForce = opt.MaximizeRevenueBruteForce
	// InterpolateL2 solves the T²_PI price-interpolation program.
	InterpolateL2 = opt.InterpolateL2
	// InterpolateL1 solves the T^∞_PI program as an LP.
	InterpolateL1 = opt.InterpolateL1
	// Lin, MaxC, MedC, OptC are the pricing baselines of Section 6.2.
	Lin  = opt.Lin
	MaxC = opt.MaxC
	MedC = opt.MedC
	OptC = opt.OptC
	// Monotonize repairs noisy research valuations.
	Monotonize = opt.Monotonize
	// SubadditiveInterpolationFeasible decides the paper's coNP-hard
	// SUBADDITIVE INTERPOLATION problem exactly (exponential worst case).
	SubadditiveInterpolationFeasible = opt.SubadditiveInterpolationFeasible
	// MaxInterpolationViolation locates the largest arbitrage hole in a
	// desired price list.
	MaxInterpolationViolation = opt.MaxInterpolationViolation
	// EnvelopePrice is the arbitrage-free covering-envelope extension of
	// fixed price points.
	EnvelopePrice = opt.EnvelopePrice
	// CompressMenu picks a k-version menu and prices it against rolled-up
	// demand.
	CompressMenu = opt.CompressMenu
	// RolledUpRevenue evaluates a short menu against the full population.
	RolledUpRevenue = opt.RolledUpRevenue
	// InterpolateL2Weighted is the seller-weighted interpolation variant.
	InterpolateL2Weighted = opt.InterpolateL2Weighted
)

// CompressedMenu is the result of a CompressMenu run.
type CompressedMenu = opt.CompressedMenu

// Market agents (Section 3).
type (
	// Seller provides data and market research.
	Seller = market.Seller
	// Broker trains once and sells noisy versions at arbitrage-free prices.
	Broker = market.Broker
	// Buyer purchases instances against a budget.
	Buyer = market.Buyer
	// Offering is one listed (dataset, model) product.
	Offering = market.Offering
	// OfferingConfig configures a listing.
	OfferingConfig = market.OfferingConfig
	// Purchase is a completed sale with the delivered weights.
	Purchase = market.Purchase
	// Research holds the seller's value and demand curves over error.
	Research = market.Research
	// ResearchSample is one market-research survey observation.
	ResearchSample = market.ResearchSample
)

// Market constructors.
var (
	// NewSeller validates a seller.
	NewSeller = market.NewSeller
	// NewBroker returns an empty broker.
	NewBroker = market.NewBroker
	// NewBuyer returns a buyer with a budget.
	NewBuyer = market.NewBuyer
	// ResearchFromSamples fits Research curves to noisy survey points.
	ResearchFromSamples = market.ResearchFromSamples
)

// HTTP broker service (the Nimbus demo surface).
type (
	// Server is the broker's HTTP handler.
	Server = server.Server
	// Client is the Go client for the broker API.
	Client = server.Client
	// BuyRequest selects one of the three purchase options over HTTP.
	BuyRequest = server.BuyRequest
)

// HTTP constructors.
var (
	// NewServer wraps a broker in the HTTP API.
	NewServer = server.New
	// NewClient returns a client for a broker base URL.
	NewClient = server.NewClient
)

// NewRand returns the library's seedable random source, used by dataset
// splits and generators.
func NewRand(seed int64) *rng.Source { return rng.New(seed) }

// Extensions beyond the core paper (its stated future work).
type (
	// CVResult is one candidate's cross-validation score.
	CVResult = ml.CVResult
	// DPGuarantee is an (ε, δ_DP) differential-privacy statement.
	DPGuarantee = noise.DPGuarantee
	// AffordableResult is a revenue-vs-affordability trade-off point.
	AffordableResult = opt.AffordableResult
	// AggregateOffering prices a column average (Example 1 of the paper).
	AggregateOffering = aggregate.Offering
	// AggregateConfig configures an aggregate offering.
	AggregateConfig = aggregate.Config
	// AggregateMechanism selects one of Example 1's noise mechanisms.
	AggregateMechanism = aggregate.Mechanism
)

// Example 1's aggregate mechanisms.
const (
	// AggAdditive is K₁: h* + U[−δ, δ].
	AggAdditive = aggregate.Additive
	// AggMultiplicative is K₂: h* · U[1−δ, 1+δ].
	AggMultiplicative = aggregate.Multiplicative
)

// Extension entry points.
var (
	// SelectModel cross-validates candidate models on a dataset.
	SelectModel = ml.SelectModel
	// DefaultCandidates is the broker's per-task candidate menu.
	DefaultCandidates = ml.DefaultCandidates
	// GaussianDPEpsilon reports the DP guarantee a sold version carries.
	GaussianDPEpsilon = noise.GaussianDPEpsilon
	// NCPForDP inverts it: the smallest NCP meeting a DP target.
	NCPForDP = noise.NCPForDP
	// ERMSensitivity bounds the L2 sensitivity of regularized ERM models.
	ERMSensitivity = noise.ERMSensitivity
	// MaximizeRevenueWithAffordability adds a fairness constraint to the DP.
	MaximizeRevenueWithAffordability = opt.MaximizeRevenueWithAffordability
	// AffordabilityFrontier traces the revenue/fairness trade-off.
	AffordabilityFrontier = opt.AffordabilityFrontier
	// NewAggregateOffering prices a column average per Example 1.
	NewAggregateOffering = aggregate.New
)
